"""Event-driven multi-stream scheduler over the simulated clocks.

Real WholeGraph overlap comes from CUDA streams: sampling, DSM gather,
compute and NCCL traffic run concurrently on separate hardware queues, with
events expressing cross-stream dependencies.  This module gives the
simulation the same vocabulary:

- a :class:`Stream` is a serial work queue bound to one
  :class:`~repro.hardware.clock.SimClock` (or a synthetic trace lane);
- ``stream.launch(op, deps=[...])`` enqueues work and returns an
  :class:`Event` that completes when the op retires;
- a single deterministic :class:`EventLoop` per :class:`DeviceStreams`
  registry advances the clocks — waits (dependency stalls) and busy time
  are charged by the loop, not by ad-hoc ``clock.advance`` calls scattered
  through the engines.

Execution is *eager where possible*: an op whose dependencies are already
resolved runs at launch time, so a program that launches work in dependency
order (every engine in this repo does) observes exactly the span sequence
the legacy hand-charged code produced — that is the bit-identity contract
of ``tests/golden/``.  Ops launched before their dependencies resolve are
parked and drained in launch (``seq``) order, which keeps the loop
deterministic regardless of how callers interleave streams.

Straggler dilation and other fault ``scale_hooks`` live on the underlying
:class:`SimClock`, so they flow through stream timestamps unchanged: a
dilated op retires later, and every dependent op inherits the delay through
its event time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.clock import SimClock, Span, Timeline

__all__ = [
    "Event",
    "EventLoop",
    "OpRecord",
    "Stream",
    "DeviceStreams",
    "streams_for",
]

_PENDING = object()


@dataclass(frozen=True, slots=True)
class OpRecord:
    """Causal provenance of one executed op (or barrier).

    The loop appends one record per retired op — pure bookkeeping, written
    *after* all clock charging, so recording provenance cannot perturb a
    single timestamp (the ``tests/golden/`` byte-identity contract).  The
    analyzer (:mod:`repro.telemetry.analysis`) joins these records back to
    timeline spans by ``(device, start, end)`` to resolve *why* a device
    stalled: ``dep_seqs`` name the upstream events, and the one whose
    completion time equals the stall's end is the binding dependency.
    """

    #: event seq of the op (matches ``Event.seq``); joins are loop seqs too
    seq: int
    label: str
    #: clock device the op charged (lane streams use their ``.../name`` id)
    device: str
    stream: str
    phase: str
    #: execution interval after any dependency stall
    start: float
    end: float
    #: seqs of the events this op waited on (explicit deps + stream FIFO);
    #: ``-1`` entries are external :meth:`Event.at` deadlines
    dep_seqs: tuple[int, ...] = ()
    #: dependency stall charged just before ``start`` (0.0 if none)
    stall: float = 0.0
    #: "op" for stream launches, "join" for barriers
    kind: str = "op"
    #: devices synchronized by a join (empty for plain ops)
    members: tuple[str, ...] = ()


class Event:
    """Completion marker of one launched op (or an external timestamp).

    ``time`` is the simulated completion time, available once the op has
    retired; ``start`` is when the op began executing (after dependency
    stalls); ``value`` is whatever a callable op returned.
    """

    __slots__ = ("seq", "label", "_loop", "_time", "start", "value")

    def __init__(self, seq: int, label: str = "", loop=None):
        self.seq = seq
        self.label = label
        self._loop = loop
        self._time = _PENDING
        self.start: float | None = None
        self.value = None

    @classmethod
    def at(cls, t: float, label: str = "external") -> "Event":
        """An already-completed external event at simulated time ``t``
        (e.g. a micro-batch close deadline, a request arrival)."""
        ev = cls(seq=-1, label=label)
        ev._time = float(t)
        ev.start = float(t)
        return ev

    def fire(self, t: float) -> None:
        """Resolve a user event (see :meth:`EventLoop.user_event`) at
        simulated time ``t``; launched ops waiting on it become runnable."""
        if self.done:
            raise RuntimeError(f"event {self.label!r} already fired")
        self._time = float(t)
        self.start = float(t)

    @property
    def done(self) -> bool:
        return self._time is not _PENDING

    @property
    def time(self) -> float:
        """Completion time; raises if the op has not retired yet."""
        if self._time is _PENDING:
            raise RuntimeError(f"event {self.label!r} is still pending")
        return self._time

    def wait(self) -> float:
        """Drain the owning loop until this event resolves; returns
        the completion time (the ``event.wait()`` of the issue spec)."""
        if self._time is _PENDING and self._loop is not None:
            self._loop.run_until(self)
        return self.time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"t={self._time}" if self.done else "pending"
        return f"Event({self.label!r}, seq={self.seq}, {state})"


class _Op:
    """One unit of stream work (internal to the loop)."""

    __slots__ = (
        "stream", "work", "deps", "phase", "busy", "category", "args",
        "wait_phase", "wait_category", "event",
    )

    def __init__(self, stream, work, deps, phase, busy, category, args,
                 wait_phase, wait_category, event):
        self.stream = stream
        self.work = work
        self.deps = deps
        self.phase = phase
        self.busy = busy
        self.category = category
        self.args = args
        self.wait_phase = wait_phase
        self.wait_category = wait_category
        self.event = event


class EventLoop:
    """The deterministic scheduler: executes launched ops, advancing clocks.

    Ready ops run eagerly at launch; parked ops (unresolved deps) drain in
    ``seq`` order via :meth:`run_until_idle`.  Two loops over the same
    launches always produce the same execution order — property-tested in
    ``tests/test_sim_streams.py``.
    """

    def __init__(self) -> None:
        self._seq = 0
        self._parked: list[_Op] = []
        #: append-only causal log of every retired op (see :class:`OpRecord`)
        self.provenance: list[OpRecord] = []

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def user_event(self, label: str = "user") -> Event:
        """A pending event the caller resolves with :meth:`Event.fire` —
        how external completions (I/O, another node's progress) gate
        launched work.  Ops launched behind it park until it fires and are
        drained in launch order by :meth:`run_until_idle`."""
        return Event(self.next_seq(), label, self)

    # -- submission -------------------------------------------------------------

    def submit(self, op: _Op) -> Event:
        if self._ready(op):
            self._execute(op)
        else:
            self._parked.append(op)
        return op.event

    @staticmethod
    def _ready(op: _Op) -> bool:
        return all(d.done for d in op.deps)

    # -- execution --------------------------------------------------------------

    def _execute(self, op: _Op) -> None:
        clock = op.stream.clock
        floor = op.stream._cursor
        for d in op.deps:
            t = d.time
            if t > floor:
                floor = t
        stall = floor - clock.now if floor > clock.now else 0.0
        if floor > clock.now:
            clock.wait_until(
                floor, phase=op.wait_phase, category=op.wait_category,
                args=None,
            )
        op.event.start = clock.now
        if callable(op.work):
            op.event.value = op.work()
        else:
            clock.advance(
                op.work, phase=op.phase, busy=op.busy,
                category=op.category, args=op.args,
            )
        op.stream._cursor = clock.now
        op.event._time = clock.now
        # provenance is recorded after every clock mutation: it can observe
        # the schedule but never influence it
        self.provenance.append(OpRecord(
            seq=op.event.seq,
            label=op.event.label,
            device=clock.device,
            stream=op.stream.name,
            phase=op.event.label if callable(op.work) else op.phase,
            start=op.event.start,
            end=clock.now,
            dep_seqs=tuple(d.seq for d in op.deps),
            stall=stall,
        ))

    def run_until_idle(self) -> None:
        """Drain every parked op whose dependencies can resolve.

        Each pass executes the lowest-``seq`` ready op; a full pass with no
        progress while ops remain parked is a dependency deadlock.
        """
        while self._parked:
            ready = [op for op in self._parked if self._ready(op)]
            if not ready:
                labels = [op.event.label for op in self._parked]
                raise RuntimeError(
                    f"event loop deadlock: {len(self._parked)} ops parked "
                    f"with unresolved dependencies ({labels[:5]}...)"
                )
            nxt = min(ready, key=lambda op: op.event.seq)
            self._parked.remove(nxt)
            self._execute(nxt)

    def run_until(self, event: Event) -> None:
        """Drain parked ops (in ``seq`` order) until ``event`` resolves."""
        while not event.done:
            ready = [op for op in self._parked if self._ready(op)]
            if not ready:
                raise RuntimeError(
                    f"event {event.label!r} cannot resolve: no runnable op"
                )
            nxt = min(ready, key=lambda op: op.event.seq)
            self._parked.remove(nxt)
            self._execute(nxt)

    @property
    def idle(self) -> bool:
        return not self._parked


class Stream:
    """A serial work queue on one device (or synthetic lane) clock.

    ``name`` distinguishes multiple streams of one device; lane streams
    (``lane=True``) render as their own ``<device>/<name>`` row in the
    Chrome trace and carry a private clock so they never stall the device's
    compute queue.
    """

    def __init__(self, clock: SimClock, loop: EventLoop, name: str = "",
                 lane: bool = False):
        self.clock = clock
        self.loop = loop
        self.name = name
        self.lane = lane
        #: completion time of the last retired op on this stream — the
        #: serialization floor for the next op (same-stream ops never overlap)
        self._cursor = -float("inf")
        #: event of the most recently launched op — every launch depends on
        #: it implicitly, so a stream is FIFO even when an op parks
        self._last_event: Event | None = None

    @property
    def device(self) -> str:
        return self.clock.device

    def launch(
        self,
        work,
        deps: tuple[Event, ...] | list[Event] = (),
        *,
        phase: str = "other",
        busy: bool = True,
        category: str = "",
        args: dict | None = None,
        wait_phase: str = "wait",
        wait_category: str = "idle",
        label: str = "",
    ) -> Event:
        """Enqueue ``work`` behind ``deps``; returns its completion event.

        ``work`` is either a simulated duration in seconds (charged under
        ``phase``/``category``/``args``) or a zero-argument callable that
        charges the stream's clock itself (composite ops — e.g. a serve
        batch that samples, gathers and infers).  The op starts at
        ``max(clock.now, cursor, *dep times)``; any dependency stall is
        recorded as a non-busy ``wait_phase`` span.
        """
        event = Event(self.loop.next_seq(), label or phase, self.loop)
        deps = tuple(deps)
        if self._last_event is not None and not self._last_event.done:
            deps = deps + (self._last_event,)  # stream FIFO order
        op = _Op(
            self, work, deps, phase, busy, category, args,
            wait_phase, wait_category, event,
        )
        self._last_event = event
        return self.loop.submit(op)

    def record(
        self,
        start: float,
        end: float,
        *,
        phase: str,
        busy: bool = True,
        category: str = "",
        args: dict | None = None,
    ) -> None:
        """Stamp a retroactive span onto this stream's trace lane.

        Used when a schedule was *planned* in a relative-time overlap window
        (see :mod:`repro.sim.window`) and is committed to the timeline after
        the fact — e.g. the per-bucket all-reduce schedule whose hidden
        portion ran concurrently with backward compute.  Zero-duration
        spans are kept: a fully-hidden bucket clips to ``(0, 0)`` but still
        belongs on the lane (its args mark it hidden).
        """
        if end < start:
            raise ValueError(f"span ends before it starts: {start}..{end}")
        if self.clock.timeline is None:
            return
        self.clock.timeline.record(Span(
            self.device, start, end, phase, busy,
            category=category, args=args,
        ))


class DeviceStreams:
    """Per-node stream registry: compute/comm/host streams plus trace lanes.

    One :class:`EventLoop` drives all streams of the node, so cross-stream
    dependencies resolve deterministically.  Lanes share the node timeline
    but own private clocks — work launched on ``comm(rank)`` or
    ``lane(rank, name)`` renders as a ``<device>/<name>`` row without
    stalling the device's compute queue.
    """

    def __init__(self, node) -> None:
        self.node = node
        self.loop = EventLoop()
        self._compute = [
            Stream(clock, self.loop, name="compute")
            for clock in node.gpu_clock
        ]
        self._host = Stream(node.host_clock, self.loop, name="host")
        self._lanes: dict[tuple[int, str], Stream] = {}

    def compute(self, rank: int) -> Stream:
        """The default (compute) stream of GPU ``rank``."""
        return self._compute[rank]

    def host(self) -> Stream:
        """The host-CPU stream."""
        return self._host

    def comm(self, rank: int) -> Stream:
        """The NCCL comm stream of GPU ``rank`` (an ``.../nccl`` lane)."""
        return self.lane(rank, "nccl")

    def lane(self, rank: int, name: str) -> Stream:
        """A named synthetic lane of GPU ``rank`` (``<device>/<name>``)."""
        key = (rank, name)
        stream = self._lanes.get(key)
        if stream is None:
            device = self.node.gpu_clock[rank].device + "/" + name
            clock = SimClock(device, self.node.timeline)
            stream = Stream(clock, self.loop, name=name, lane=True)
            self._lanes[key] = stream
        return stream

    def barrier(
        self, ranks=None, *, phase: str = "wait", category: str = "idle",
    ) -> Event:
        """Join the compute streams of ``ranks`` (default: all GPUs).

        Every clock idles forward to the max — the collective's entry
        barrier, recorded per device as a non-busy ``phase`` span — and the
        returned event completes at that join time, ready to anchor
        dependent launches on any stream.
        """
        streams = (
            self._compute if ranks is None
            else [self._compute[r] for r in ranks]
        )
        return join(streams, phase=phase, category=category, loop=self.loop)


def join(streams, *, phase: str = "wait", category: str = "idle",
         loop: EventLoop | None = None) -> Event:
    """Barrier across arbitrary streams (possibly of different nodes).

    Advances every stream's clock to the max ``now`` (early arrivals record
    non-busy ``phase`` spans, in stream order) and returns a completed
    event at the join time — the cross-node entry barrier the hierarchical
    grad-sync rings use.
    """
    streams = list(streams)
    if not streams:
        raise ValueError("cannot join zero streams")
    if loop is None:
        loop = streams[0].loop
    # cross-node joins span several loops; drain each once, in stream order
    for lp in dict.fromkeys([s.loop for s in streams] + [loop]):
        lp.run_until_idle()
    sync_point = max(s.clock.now for s in streams)
    for s in streams:
        s.clock.wait_until(sync_point, phase=phase, category=category)
        s._cursor = s.clock.now
    ev = Event(loop.next_seq(), label=phase, loop=loop)
    ev.start = sync_point
    ev._time = sync_point
    loop.provenance.append(OpRecord(
        seq=ev.seq,
        label=phase,
        device="",
        stream="join",
        phase=phase,
        start=sync_point,
        end=sync_point,
        kind="join",
        members=tuple(s.device for s in streams),
    ))
    return ev


def streams_for(node) -> DeviceStreams:
    """The :class:`DeviceStreams` registry of ``node`` (cached on the node)."""
    streams = getattr(node, "_streams", None)
    if streams is None or streams.node is not node:
        streams = DeviceStreams(node)
        node._streams = streams
    return streams
