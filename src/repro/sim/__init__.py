"""Event-driven multi-stream simulation core (``repro.sim``).

The stream/event vocabulary the overlap engines are built on:

- :class:`~repro.sim.core.Stream` / :class:`~repro.sim.core.Event` /
  :class:`~repro.sim.core.EventLoop` — serial per-device work queues with
  cross-stream dependencies, drained by one deterministic loop;
- :class:`~repro.sim.core.DeviceStreams` — per-node registry of
  compute/comm/host streams and synthetic trace lanes
  (``streams_for(node)`` or ``node.streams``);
- :class:`~repro.sim.window.VirtualStream` /
  :class:`~repro.sim.window.OverlapWindow` — relative-time overlap
  planning that preserves the legacy engines' float arithmetic bit for bit
  (see the module docstring for why that matters).
"""

from repro.sim.core import (
    DeviceStreams,
    Event,
    EventLoop,
    Stream,
    join,
    streams_for,
)
from repro.sim.window import OverlapWindow, VirtualStream

__all__ = [
    "DeviceStreams",
    "Event",
    "EventLoop",
    "Stream",
    "join",
    "streams_for",
    "OverlapWindow",
    "VirtualStream",
]
