"""GlobalID encoding.

WholeGraph assigns every graph node a *GlobalID* composed of the rank that
owns the node and the node's local index on that rank (paper §III-B: "Each
graph node is assigned to a GlobalID, which is composed of rank ID and local
ID").  We pack both into a single int64: the top ``GLOBAL_ID_RANK_BITS`` bits
hold the rank, the remainder holds the local ID.

All functions are vectorised over NumPy arrays and never copy more than the
output array.
"""

from __future__ import annotations

import numpy as np

#: Number of high bits reserved for the owning rank.  16 bits supports up to
#: 65536 ranks while leaving 47 bits (~1.4e14) of local IDs.
GLOBAL_ID_RANK_BITS = 16

_LOCAL_BITS = 63 - GLOBAL_ID_RANK_BITS
_LOCAL_MASK = np.int64((1 << _LOCAL_BITS) - 1)
#: Maximum local ID representable in a GlobalID.
MAX_LOCAL_ID = int(_LOCAL_MASK)
#: Maximum rank representable in a GlobalID.
MAX_RANK = (1 << GLOBAL_ID_RANK_BITS) - 1


def make_global_ids(rank, local_ids) -> np.ndarray:
    """Pack ``rank`` and ``local_ids`` into GlobalIDs.

    Parameters
    ----------
    rank:
        Scalar rank or int array broadcastable against ``local_ids``.
    local_ids:
        Local node indices on the owning rank (int array or scalar).

    Returns
    -------
    np.ndarray
        int64 array of packed GlobalIDs.
    """
    local = np.asarray(local_ids, dtype=np.int64)
    r = np.asarray(rank, dtype=np.int64)
    if np.any(local < 0) or np.any(local > MAX_LOCAL_ID):
        raise ValueError("local id out of range for GlobalID packing")
    if np.any(r < 0) or np.any(r > MAX_RANK):
        raise ValueError(f"rank out of range [0, {MAX_RANK}]")
    return (r << _LOCAL_BITS) | local


def split_global_ids(global_ids) -> tuple[np.ndarray, np.ndarray]:
    """Unpack GlobalIDs into ``(ranks, local_ids)``."""
    g = np.asarray(global_ids, dtype=np.int64)
    return g >> _LOCAL_BITS, g & _LOCAL_MASK


def rank_of(global_ids) -> np.ndarray:
    """Return the owning rank of each GlobalID."""
    return np.asarray(global_ids, dtype=np.int64) >> _LOCAL_BITS


def local_of(global_ids) -> np.ndarray:
    """Return the local index of each GlobalID on its owning rank."""
    return np.asarray(global_ids, dtype=np.int64) & _LOCAL_MASK
