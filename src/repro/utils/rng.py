"""Deterministic random-stream management.

Multi-process GNN training needs one independent random stream per rank (for
sampling) plus shared streams for dataset generation.  We derive all of them
from a single root seed with ``numpy``'s ``SeedSequence`` spawning, so any
experiment is reproducible from one integer.
"""

from __future__ import annotations

import numpy as np


def spawn_rng(seed: int, *keys) -> np.random.Generator:
    """Derive an independent generator from ``seed`` and a tuple of keys.

    Keys may be ints or strings; strings are hashed stably (not with
    ``hash()``, which is salted per process).
    """
    ints = []
    for key in keys:
        if isinstance(key, str):
            ints.append(int.from_bytes(key.encode("utf-8"), "little") % (2**32))
        else:
            ints.append(int(key) % (2**32))
    return np.random.default_rng(np.random.SeedSequence([seed, *ints]))


class RngPool:
    """A pool of per-rank generators derived from one root seed.

    Example
    -------
    >>> pool = RngPool(seed=0, num_ranks=8)
    >>> r0 = pool.rank(0)   # sampling stream of rank 0
    >>> shared = pool.named("features")  # stream shared by all ranks
    """

    def __init__(self, seed: int, num_ranks: int):
        self.seed = int(seed)
        self.num_ranks = int(num_ranks)
        self._rank_rngs = [
            spawn_rng(self.seed, "rank", r) for r in range(self.num_ranks)
        ]

    def rank(self, rank: int) -> np.random.Generator:
        """Per-rank independent stream."""
        return self._rank_rngs[rank]

    def named(self, name: str) -> np.random.Generator:
        """A stream identified by name, shared across ranks."""
        return spawn_rng(self.seed, name)
