"""Shared utilities: GlobalID packing, scans, RNG streams, formatting."""

from repro.utils.ids import (
    GLOBAL_ID_RANK_BITS,
    make_global_ids,
    split_global_ids,
    rank_of,
    local_of,
)
from repro.utils.scan import exclusive_prefix_sum, inclusive_prefix_sum
from repro.utils.rng import RngPool, spawn_rng
from repro.utils.units import format_bytes, format_seconds

__all__ = [
    "GLOBAL_ID_RANK_BITS",
    "make_global_ids",
    "split_global_ids",
    "rank_of",
    "local_of",
    "exclusive_prefix_sum",
    "inclusive_prefix_sum",
    "RngPool",
    "spawn_rng",
    "format_bytes",
    "format_seconds",
]
