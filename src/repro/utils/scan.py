"""Prefix-sum primitives.

The AppendUnique op (paper §III-C2) assigns contiguous sub-graph IDs to
unique neighbor nodes by running an *exclusive prefix sum* over per-bucket
counts.  These helpers are the NumPy equivalents of the GPU scan kernels.
"""

from __future__ import annotations

import numpy as np


def exclusive_prefix_sum(values) -> np.ndarray:
    """Exclusive (pre-shift) prefix sum.

    ``out[i] = sum(values[:i])``, so ``out[0] == 0`` and the total is *not*
    included.  The total can be recovered as ``out[-1] + values[-1]``.
    """
    v = np.asarray(values)
    out = np.empty(v.shape[0], dtype=np.int64)
    if v.shape[0] == 0:
        return out
    out[0] = 0
    np.cumsum(v[:-1], out=out[1:])
    return out


def inclusive_prefix_sum(values) -> np.ndarray:
    """Inclusive prefix sum: ``out[i] = sum(values[:i+1])``."""
    return np.cumsum(np.asarray(values, dtype=np.int64))
