"""Human-readable formatting of byte counts, durations and bandwidths."""

from __future__ import annotations

from repro.config import GB, KB, MB


def format_bytes(n: float) -> str:
    """Format a byte count with a binary-prefix unit (e.g. ``'3.1 GB'``)."""
    n = float(n)
    for unit, scale in (("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(n) >= scale:
            return f"{n / scale:.2f} {unit}"
    return f"{n:.0f} B"


def format_seconds(t: float) -> str:
    """Format a duration, picking s / ms / us as appropriate."""
    t = float(t)
    if abs(t) >= 1.0:
        return f"{t:.2f} s"
    if abs(t) >= 1e-3:
        return f"{t * 1e3:.2f} ms"
    return f"{t * 1e6:.2f} us"


def format_bandwidth(bytes_per_s: float) -> str:
    """Format a bandwidth in GB/s."""
    return f"{bytes_per_s / GB:.1f} GB/s"
