"""The AppendUnique op (paper §III-C2, Fig. 5).

Given the mini-batch *target* nodes and the (duplicate-laden) sampled
*neighbor* nodes, produce the node list of the sampled sub-graph with:

- all target nodes first, in their original order (so gathered features can
  be reused as the next layer's targets — the prefix property);
- each distinct neighbor exactly once after them;
- a contiguous sub-graph ID for every node;
- the *duplicate count* of each sub-graph node (how many times it was
  sampled as a neighbor), which g-SpMM later uses to elide atomics.

The implementation follows the paper's hash-table construction literally:

1. insert targets with value = index-in-target-list;
2. insert neighbors with value = -1 (idempotent; duplicates hit);
3. per *bucket*, count the ``-1`` values; exclusive-prefix-sum the bucket
   counts; add the target count — this assigns neighbor sub-graph IDs in
   (bucket, slot) order without any sort;
4. read every node's sub-graph ID back out of the table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ops.hashtable import EMPTY_KEY, GpuHashTable
from repro.utils.scan import exclusive_prefix_sum


@dataclass
class AppendUniqueResult:
    """Output of :func:`append_unique`."""

    #: sub-graph node list: targets first (original order), then unique
    #: neighbors in (bucket, slot) table order — values are input node IDs
    unique_nodes: np.ndarray
    #: number of target nodes (== prefix length of ``unique_nodes``)
    num_targets: int
    #: sub-graph ID of each input neighbor (parallel to the neighbor input)
    neighbor_subgraph_ids: np.ndarray
    #: per-unique-node count of appearances in the neighbor input
    duplicate_counts: np.ndarray
    #: probe rounds used (cost-model input)
    probe_rounds: int

    @property
    def num_unique(self) -> int:
        return int(self.unique_nodes.shape[0])


def append_unique(
    target_nodes,
    neighbor_nodes,
    bucket_size: int = 128,
    load_factor: float = 0.5,
) -> AppendUniqueResult:
    """Append ``neighbor_nodes`` to ``target_nodes``, de-duplicated.

    ``target_nodes`` must already be duplicate-free (they are the previous
    layer's unique output).  Neighbors that coincide with a target map to
    the target's sub-graph ID.
    """
    targets = np.asarray(target_nodes, dtype=np.int64).ravel()
    neighbors = np.asarray(neighbor_nodes, dtype=np.int64).ravel()
    nt = targets.shape[0]
    if nt and np.unique(targets).shape[0] != nt:
        raise ValueError("target nodes must be unique")

    capacity = max(int((nt + neighbors.shape[0]) / load_factor), bucket_size)
    table = GpuHashTable(capacity, bucket_size=bucket_size)

    # step 1: targets carry their list index as value (first table of Fig. 5)
    _, _, rounds_t = table.insert(targets, np.arange(nt, dtype=np.int64))

    # step 2: neighbors insert with value -1 (second table of Fig. 5);
    # duplicates and target-coincident nodes report `found`.
    nbr_slots, _, rounds_n = table.insert(
        neighbors, np.full(neighbors.shape[0], EMPTY_KEY)
    ) if neighbors.size else (np.empty(0, np.int64), None, 0)

    # step 3: bucket-count the -1 values, exclusive scan, offset by target
    # count (third and fourth tables of Fig. 5).
    occ = table.occupied_slots()
    is_new_neighbor = table.values[occ] == EMPTY_KEY
    buckets = table.bucket_of_slot(occ)
    bucket_counts = np.bincount(
        buckets[is_new_neighbor], minlength=table.num_buckets
    )
    bucket_starts = exclusive_prefix_sum(bucket_counts) + nt

    # assign IDs in (bucket, slot) order: within a bucket, occupied -1 slots
    # get consecutive IDs from the bucket's start.
    new_slots = occ[is_new_neighbor]
    new_buckets = buckets[is_new_neighbor]
    # occ is slot-sorted, so positions within each bucket are already ordered
    within = np.arange(new_slots.shape[0]) - exclusive_prefix_sum(
        bucket_counts
    )[new_buckets]
    sub_ids = bucket_starts[new_buckets] + within
    table.set_value(new_slots, sub_ids)

    # step 4: read back per-input sub-graph IDs and build the unique list.
    if neighbors.size:
        neighbor_subgraph_ids = table.values[nbr_slots]
    else:
        neighbor_subgraph_ids = np.empty(0, dtype=np.int64)

    num_unique = nt + int(is_new_neighbor.sum())
    unique_nodes = np.empty(num_unique, dtype=np.int64)
    unique_nodes[:nt] = targets
    unique_nodes[sub_ids] = table.keys[new_slots]

    duplicate_counts = np.bincount(
        neighbor_subgraph_ids, minlength=num_unique
    ).astype(np.int64)

    return AppendUniqueResult(
        unique_nodes=unique_nodes,
        num_targets=nt,
        neighbor_subgraph_ids=neighbor_subgraph_ids,
        duplicate_counts=duplicate_counts,
        probe_rounds=int(rounds_t + rounds_n),
    )


def sort_based_append_unique(
    target_nodes, neighbor_nodes
) -> AppendUniqueResult:
    """The sort-based unique used by other frameworks (paper §III-C2:
    "we adopt the hash table method *instead of the sort method* used in
    other frameworks").

    Functionally interchangeable with :func:`append_unique` up to the
    ordering of the non-target suffix (here: ascending node ID instead of
    bucket order) — all the invariants the pipeline relies on (targets
    first and in order, IDs contiguous, duplicate counts exact) hold for
    both, which the ablation tests verify.  The cost difference is the
    point: sorting is O(E log E) key movement versus O(E) expected hash
    probes, and the ablation benchmark prices both.
    """
    targets = np.asarray(target_nodes, dtype=np.int64).ravel()
    neighbors = np.asarray(neighbor_nodes, dtype=np.int64).ravel()
    nt = targets.shape[0]
    if nt and np.unique(targets).shape[0] != nt:
        raise ValueError("target nodes must be unique")

    # sort + adjacent-compare unique of the neighbor stream
    order = np.argsort(neighbors, kind="stable")
    sorted_nbrs = neighbors[order]
    is_first = np.ones(sorted_nbrs.shape[0], dtype=bool)
    is_first[1:] = sorted_nbrs[1:] != sorted_nbrs[:-1]
    distinct = sorted_nbrs[is_first]
    # drop the ones that are targets; the rest go after the target prefix
    if nt:
        not_target = ~np.isin(distinct, targets, assume_unique=True)
    else:
        not_target = np.ones(distinct.shape[0], dtype=bool)
    suffix = distinct[not_target]
    unique_nodes = np.concatenate([targets, suffix])

    # map every neighbor to its sub-graph ID: targets keep their position
    # in the (unsorted) target prefix, the rest binary-search the sorted
    # suffix — no per-element Python dict work
    neighbor_subgraph_ids = np.empty(neighbors.shape[0], dtype=np.int64)
    if nt:
        tgt_order = np.argsort(targets, kind="stable")
        sorted_tgts = targets[tgt_order]
        pos = np.searchsorted(sorted_tgts, neighbors)
        pos_clipped = np.minimum(pos, nt - 1)
        is_target = sorted_tgts[pos_clipped] == neighbors
        neighbor_subgraph_ids[is_target] = tgt_order[
            pos_clipped[is_target]
        ]
    else:
        is_target = np.zeros(neighbors.shape[0], dtype=bool)
    rest = ~is_target
    neighbor_subgraph_ids[rest] = nt + np.searchsorted(
        suffix, neighbors[rest]
    )
    duplicate_counts = np.bincount(
        neighbor_subgraph_ids, minlength=unique_nodes.shape[0]
    ).astype(np.int64)
    return AppendUniqueResult(
        unique_nodes=unique_nodes,
        num_targets=nt,
        neighbor_subgraph_ids=neighbor_subgraph_ids,
        duplicate_counts=duplicate_counts,
        probe_rounds=0,
    )
