"""Generalised sampled-dense-dense matrix multiplication (g-SDDMM).

Computes a per-edge scalar (or vector) from the dense features of the edge's
endpoints, "sampled" at the sparse adjacency pattern:

- :func:`gsddmm_dot` — ``z_e = <u[dst_e], v[src_e]>`` — the backward of
  g-SpMM with respect to edge weights (paper §III-C4), and the attention
  logits of transformer-style GNNs;
- :func:`gsddmm_add` — ``z_e = u[dst_e] + v[src_e]`` — GAT's additive
  attention, per head.

Both operate on the CSR layout (edges sorted by destination row).
"""

from __future__ import annotations

import numpy as np

from repro.ops.segment import segment_ids_from_indptr


def gsddmm_dot(
    csr_indptr, csr_indices, dst_features: np.ndarray, src_features: np.ndarray
) -> np.ndarray:
    """Per-edge dot product of endpoint features.

    ``dst_features`` is indexed by CSR row, ``src_features`` by CSR column.
    Returns an array of shape ``(num_edges,)`` (2-D inputs) or
    ``(num_edges, heads)`` (3-D inputs ``(nodes, heads, dim)``).
    """
    indices = np.asarray(csr_indices, dtype=np.int64)
    dst_ids = segment_ids_from_indptr(csr_indptr)
    u = dst_features[dst_ids]
    v = src_features[indices]
    return np.einsum("...d,...d->...", u, v)


def gsddmm_add(
    csr_indptr, csr_indices, dst_values: np.ndarray, src_values: np.ndarray
) -> np.ndarray:
    """Per-edge sum of endpoint scalars (GAT's ``a_l^T Wh_dst + a_r^T Wh_src``)."""
    indices = np.asarray(csr_indices, dtype=np.int64)
    dst_ids = segment_ids_from_indptr(csr_indptr)
    return dst_values[dst_ids] + src_values[indices]
