"""WholeGraph ops (paper §III-C).

- :mod:`repro.ops.sampling` — Algorithm 1: fully-parallel random neighbor
  sampling *without replacement* via path doubling;
- :mod:`repro.ops.hashtable` — the bucketed GPU hash table (Warpcore-style)
  behind AppendUnique;
- :mod:`repro.ops.append_unique` — append neighbors to targets, de-duplicate,
  assign contiguous sub-graph IDs, emit duplicate counts;
- :mod:`repro.ops.neighbor_sampler` — multi-layer sub-graph sampling over the
  multi-GPU graph store;
- :mod:`repro.ops.gather` — the shared-memory one-kernel global gather and
  the NCCL-style 5-step distributed-memory gather (Fig. 4);
- :mod:`repro.ops.segment` / :mod:`repro.ops.spmm` / :mod:`repro.ops.sddmm`
  — segment reductions, g-SpMM and g-SDDMM with the duplicate-count
  atomic-elision optimisation.
"""

from repro.ops.sampling import (
    parallel_sample_without_replacement,
    batch_sample_without_replacement,
    batch_sample_with_replacement,
    reference_sample_without_replacement,
)
from repro.ops.hashtable import GpuHashTable
from repro.ops.append_unique import (
    AppendUniqueResult,
    append_unique,
    sort_based_append_unique,
)
from repro.ops.neighbor_sampler import NeighborSampler, SampledSubgraph
from repro.ops.gather import (
    shared_memory_gather,
    distributed_memory_gather,
    DistributedGatherTrace,
)
from repro.ops.segment import (
    segment_sum,
    segment_mean,
    segment_max,
    segment_softmax,
)
from repro.ops.spmm import gspmm_sum, gspmm_mean, gspmm_backward_features
from repro.ops.sddmm import gsddmm_dot, gsddmm_add
from repro.ops.negative_sampling import (
    edges_exist,
    sample_negative_edges,
    sample_positive_edges,
)

__all__ = [
    "parallel_sample_without_replacement",
    "batch_sample_without_replacement",
    "batch_sample_with_replacement",
    "reference_sample_without_replacement",
    "GpuHashTable",
    "AppendUniqueResult",
    "append_unique",
    "sort_based_append_unique",
    "NeighborSampler",
    "SampledSubgraph",
    "shared_memory_gather",
    "distributed_memory_gather",
    "DistributedGatherTrace",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "segment_softmax",
    "gspmm_sum",
    "gspmm_mean",
    "gspmm_backward_features",
    "gsddmm_dot",
    "gsddmm_add",
    "edges_exist",
    "sample_negative_edges",
    "sample_positive_edges",
]
