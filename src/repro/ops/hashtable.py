"""Bucketed open-addressing hash table, GPU-style (paper §III-C2).

WholeGraph's AppendUnique op de-duplicates sampled neighbors with a GPU hash
table rather than the sort used by other frameworks, borrowing the parallel
hashing scheme of Warpcore (Jünger et al., HiPC'20).  The table here keeps
the GPU execution shape:

- slots are grouped into fixed-size *buckets* (the unit over which the
  AppendUnique ID-assignment scan runs);
- keys hash to a bucket and linear-probe within it, overflowing to the next
  bucket — the cooperative-group probing of Warpcore flattened to a data-
  parallel loop over *probe rounds*: in each round every unresolved key
  attempts one slot, exactly one winner per slot is committed (the CAS), and
  losers continue;
- insertion is idempotent: re-inserting an existing key finds it and reports
  ``found``.

Because conflicts are resolved per-round with a deterministic winner
(lowest input index, mirroring a CAS race that some lane wins), the table
contents are reproducible, which the tests rely on.
"""

from __future__ import annotations

import numpy as np

from repro.graph.partition import splitmix64

EMPTY_KEY = np.int64(-1)


class GpuHashTable:
    """Open-addressing table with bucket structure and round-based probing."""

    def __init__(self, capacity: int, bucket_size: int = 128, seed: int = 0):
        """``capacity`` is rounded up to a whole number of buckets.

        Size the table at ~2x the expected key count to keep probe chains
        short (standard open-addressing practice; the CUDA op does the same).
        """
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.bucket_size = int(bucket_size)
        self.num_buckets = -(-int(capacity) // self.bucket_size)
        self.capacity = self.num_buckets * self.bucket_size
        self.seed = seed
        self.keys = np.full(self.capacity, EMPTY_KEY, dtype=np.int64)
        self.values = np.full(self.capacity, EMPTY_KEY, dtype=np.int64)
        self.size = 0

    # -- hashing ----------------------------------------------------------------

    def _home_slot(self, keys: np.ndarray) -> np.ndarray:
        h = splitmix64(
            keys.astype(np.uint64) ^ np.uint64(self.seed * 0x9E3779B97F4A7C15)
        )
        return (h % np.uint64(self.capacity)).astype(np.int64)

    # -- core probe/insert loop ----------------------------------------------------

    def insert(self, keys, values) -> tuple[np.ndarray, np.ndarray, int]:
        """Insert key/value pairs; existing keys keep their stored value.

        Returns ``(slots, found, probe_rounds)``: the slot of each input key,
        whether the key already existed *before this call or earlier in this
        batch*, and the number of probe rounds the batch needed (the cost
        model multiplies work by this).

        Duplicate keys *within* the batch resolve like the CUDA kernel: one
        lane wins the CAS and inserts, the rest subsequently find the key.
        """
        keys = np.asarray(keys, dtype=np.int64).ravel()
        values = np.broadcast_to(
            np.asarray(values, dtype=np.int64), keys.shape
        ).copy()
        if np.any(keys == EMPTY_KEY):
            raise ValueError("-1 is the reserved empty key")
        slots_out = np.full(keys.shape[0], -1, dtype=np.int64)
        found = np.zeros(keys.shape[0], dtype=bool)
        if keys.size == 0:
            return slots_out, found, 0

        pending = np.arange(keys.shape[0], dtype=np.int64)
        probe = self._home_slot(keys)
        rounds = 0
        while pending.size:
            rounds += 1
            # a lane advances at most once per two rounds (CAS-loss retries
            # revisit the slot), so 2·capacity rounds without resolution
            # means every slot was visited and held a foreign key
            if rounds > 2 * self.capacity + 4:
                raise RuntimeError("hash table is full (probe loop exhausted)")
            cur = probe[pending]
            slot_keys = self.keys[cur]

            # lanes whose probed slot already holds their key: hit.
            hit = slot_keys == keys[pending]
            slots_out[pending[hit]] = cur[hit]
            found[pending[hit]] = True

            # lanes probing an empty slot race to CAS it; the first lane per
            # slot (in input order) wins, ties on the same key resolved next
            # round as hits.
            empty = slot_keys == EMPTY_KEY
            cand = pending[empty]
            cand_slots = cur[empty]
            if cand.size:
                uniq_slots, first_idx = np.unique(cand_slots, return_index=True)
                winners = cand[first_idx]
                self.keys[uniq_slots] = keys[winners]
                self.values[uniq_slots] = values[winners]
                self.size += uniq_slots.size
                slots_out[winners] = uniq_slots

            # Unresolved lanes that probed an *occupied foreign* slot advance;
            # lanes that lost the CAS race on an empty slot retry the same
            # slot (it may now hold their own key — the failed-CAS re-read of
            # the CUDA kernel).
            unresolved = slots_out[pending] == -1
            nxt = pending[unresolved]
            foreign = ~empty[unresolved]
            adv = nxt[foreign]
            probe[adv] = (probe[adv] + 1) % self.capacity
            pending = nxt
        return slots_out, found, rounds

    def lookup(self, keys) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(values, found)`` per key; missing keys get value -1.

        Probes a whole bucket-sized window per round instead of one slot:
        each pending key gathers ``W`` consecutive slots and resolves at
        the *first* slot along its chain holding its own key (hit) or the
        empty sentinel (definitive absence).  The table does not mutate
        during lookup, so first-stop-along-the-chain gives exactly the
        slot-at-a-time answer — in ``capacity / W`` rounds instead of up to
        ``capacity``.
        """
        keys = np.asarray(keys, dtype=np.int64).ravel()
        vals = np.full(keys.shape[0], EMPTY_KEY, dtype=np.int64)
        found = np.zeros(keys.shape[0], dtype=bool)
        if keys.size == 0:
            return vals, found
        w = min(self.bucket_size, self.capacity)
        offsets = np.arange(w, dtype=np.int64)
        pending = np.arange(keys.shape[0], dtype=np.int64)
        probe = self._home_slot(keys)
        for _ in range(-(-self.capacity // w)):
            if pending.size == 0:
                break
            window = (probe[pending, None] + offsets[None, :]) % self.capacity
            slot_keys = self.keys[window]
            hit = slot_keys == keys[pending, None]
            stop = hit | (slot_keys == EMPTY_KEY)
            has_stop = stop.any(axis=1)
            idx = np.flatnonzero(has_stop)
            if idx.size:
                cols = stop[idx].argmax(axis=1)
                hit_idx = idx[hit[idx, cols]]
                if hit_idx.size:
                    slots = window[hit_idx, stop[hit_idx].argmax(axis=1)]
                    vals[pending[hit_idx]] = self.values[slots]
                    found[pending[hit_idx]] = True
            # keys with no hit and no empty slot in the window probe on
            pending = pending[~has_stop]
            probe[pending] = (probe[pending] + w) % self.capacity
        return vals, found

    def set_value(self, slots, values) -> None:
        """Overwrite the value of occupied slots (AppendUnique's ID fill)."""
        slots = np.asarray(slots, dtype=np.int64)
        if np.any(self.keys[slots] == EMPTY_KEY):
            raise ValueError("cannot set value of an empty slot")
        self.values[slots] = np.asarray(values, dtype=np.int64)

    # -- bucket views (AppendUnique's scan domain) ------------------------------------

    def bucket_of_slot(self, slots) -> np.ndarray:
        return np.asarray(slots, dtype=np.int64) // self.bucket_size

    def occupied_slots(self) -> np.ndarray:
        """All occupied slot indices, in (bucket, slot) order."""
        return np.flatnonzero(self.keys != EMPTY_KEY).astype(np.int64)
