"""Global feature gather: shared-memory vs distributed-memory (paper Fig. 4).

Every GPU holds a random list of node IDs whose feature rows live across all
GPUs and must end up locally, in input order.

**Shared-memory implementation** (WholeGraph): one gather kernel per GPU;
NVLink/NVSwitch moves the bytes with no software staging — a thin wrapper
over :meth:`WholeTensor.gather`.

**Distributed-memory implementation** (the NCCL baseline of Fig. 4 left,
measured in Fig. 10) runs five software steps:

1. *bucket* the node IDs by home GPU (one pass over the IDs);
2. exchange per-pair counts, then *alltoallv* the bucketed IDs;
3. every GPU performs a *local gather* for all requesters;
4. *alltoallv* the gathered feature rows back;
5. *reorder* the received rows into input order.

Both produce identical results; the trace records per-step simulated time so
the Fig. 10 latency/bandwidth comparison can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dsm.comm import Communicator
from repro.dsm.whole_tensor import WholeTensor
from repro.hardware import costmodel
from repro.telemetry import metrics


def shared_memory_gather(
    tensor: WholeTensor, per_rank_rows: list[np.ndarray], phase: str = "gather"
) -> tuple[list[np.ndarray], float]:
    """All ranks gather concurrently with one kernel each.

    Returns ``(per-rank results, elapsed)`` where ``elapsed`` is the
    simulated wall time of the concurrent gather (max over ranks).
    """
    node = tensor.node
    node.sync()
    t0 = node.gpu_clock[0].now
    results = [
        tensor.gather(rows, rank, phase=phase)
        for rank, rows in enumerate(per_rank_rows)
    ]
    t1 = node.sync()
    return results, t1 - t0


@dataclass
class DistributedGatherTrace:
    """Per-step simulated timings of the 5-step NCCL-style gather."""

    step_times: dict[str, float] = field(default_factory=dict)
    total_time: float = 0.0
    #: mean payload bytes of the feature alltoallv (step 4) per rank,
    #: summed from the *actual* reply rows each requester received — for the
    #: Fig. 10 "NCCL bandwidth measured on the final alltoallv" bar
    step4_bytes_per_rank: float = 0.0
    #: the subset of those bytes that really crossed NVLink (home != requester)
    step4_remote_bytes_per_rank: float = 0.0

    def step4_bus_bw(self, num_ranks: int) -> float:
        """BusBW of the feature alltoallv alone (what Fig. 10 reports)."""
        t = self.step_times.get("alltoallv_features", 0.0)
        if t <= 0:
            return 0.0
        if self.step4_remote_bytes_per_rank > 0:
            return self.step4_remote_bytes_per_rank / t
        # fall back to the uniform-ownership estimate when the actual remote
        # payload was not recorded
        remote = self.step4_bytes_per_rank * (num_ranks - 1) / num_ranks
        return remote / t


def distributed_memory_gather(
    tensor: WholeTensor,
    per_rank_rows: list[np.ndarray],
    comm: Communicator,
    phase: str = "gather_nccl",
) -> tuple[list[np.ndarray], DistributedGatherTrace]:
    """The explicit-communication gather of Fig. 4 (left side)."""
    node = tensor.node
    nr = node.num_gpus
    if len(per_rank_rows) != nr:
        raise ValueError("need one row list per rank")
    trace = DistributedGatherTrace()
    node.sync()
    t_start = node.gpu_clock[0].now

    def step_mark() -> float:
        return node.sync()

    # ---- step 1: bucket node IDs by home GPU -------------------------------
    buckets: list[list[np.ndarray]] = []  # [requester][home] -> local rows
    orders: list[list[np.ndarray]] = []  # positions for the final reorder
    for rank, rows in enumerate(per_rank_rows):
        rows = np.asarray(rows, dtype=np.int64)
        owners, local = tensor._owners_and_local(rows)
        # single stable sort by owner replaces one boolean-mask pass per
        # rank: positions sorted by home give the reorder indices, and the
        # per-home counts give the split points
        order = np.argsort(owners, kind="stable")
        splits = np.cumsum(np.bincount(owners, minlength=nr))[:-1]
        buckets.append(np.split(local[order], splits))
        orders.append(np.split(order, splits))
        # one pass over the IDs: read id, compute owner, write to bucket
        node.gpu_clock[rank].advance(
            costmodel.elementwise_time(rows.nbytes * 2), phase=phase,
            args={"step": "bucket_ids", "rows": int(rows.size),
                  "bytes": int(rows.nbytes)},
        )
    t1 = step_mark()
    trace.step_times["bucket_ids"] = t1 - t_start

    # ---- step 2: exchange counts, then alltoallv the IDs --------------------
    counts = [[b.size for b in row] for row in buckets]
    comm.allgather(counts, phase=phase, nbytes_each=8 * nr)
    id_requests = comm.alltoallv(
        [[b.astype(np.int64) for b in row] for row in buckets], phase=phase
    )  # id_requests[home][requester]
    t2 = step_mark()
    trace.step_times["alltoallv_ids"] = t2 - t1

    # ---- step 3: local gather on every home GPU ------------------------------
    # per-(home, requester) request-row counts — the split points of every
    # fused gather below and the payload matrix of the step-4 accounting
    req_counts = np.array(
        [[id_requests[home][requester].size for requester in range(nr)]
         for home in range(nr)],
        dtype=np.int64,
    )
    replies: list[list[np.ndarray]] = []
    for home in range(nr):
        part = tensor.local_part(home)
        # one fused gather over all requesters' rows, split per requester
        fused = part[np.concatenate(id_requests[home])]
        replies.append(np.split(fused, np.cumsum(req_counts[home])[:-1]))
        node.gpu_clock[home].advance(
            costmodel.gather_time(
                int(req_counts[home].sum()) * tensor.row_bytes,
                tensor.row_bytes,
                num_gpus=1,  # purely local HBM reads
            ),
            phase=phase, category="gather",
            args={"step": "local_gather",
                  "rows": int(req_counts[home].sum()),
                  "bytes": int(req_counts[home].sum() * tensor.row_bytes)},
        )
    t3 = step_mark()
    trace.step_times["local_gather"] = t3 - t2

    # ---- step 4: alltoallv the features back ----------------------------------
    feature_replies = comm.alltoallv(replies, phase=phase)
    # feature_replies[requester][home]
    injector = node.fault_injector
    if injector is not None:
        # the reply leg is where transient loss bites: each requester whose
        # reply went missing stalls for timeout+backoff before the re-issue
        for requester in range(nr):
            injector.charge_gather_retries(
                node.gpu_clock[requester],
                phase="gather_retry",
                node_id=node.node_id,
            )
    t4 = step_mark()
    trace.step_times["alltoallv_features"] = t4 - t3
    # sum the actual reply payloads each requester received (requests can be
    # uneven across ranks, so this is not the mean of *requested* rows).
    # ``req_counts[home][requester]`` rows of ``row_bytes`` each came back on
    # the transposed leg, so the payload matrix is one outer product — the
    # byte counts are integer-exact in float64, identical to summing the
    # per-array ``.nbytes`` in a Python loop.
    payload = req_counts.T.astype(np.float64) * float(tensor.row_bytes)
    reply_bytes = payload.sum(axis=1)
    remote_reply_bytes = reply_bytes - np.diag(payload)
    trace.step4_bytes_per_rank = float(reply_bytes.mean())
    trace.step4_remote_bytes_per_rank = float(remote_reply_bytes.mean())

    # ---- step 5: local reorder into input order --------------------------------
    results = []
    for rank, rows in enumerate(per_rank_rows):
        rows = np.asarray(rows, dtype=np.int64)
        out = np.empty((rows.size, tensor.num_cols), dtype=tensor.dtype)
        # the per-home reply blocks are already in bucketed (home-major)
        # order, and the per-home position lists concatenate back to the
        # full bucketing permutation — one fancy-index assignment replaces
        # the per-home scatter loop
        if rows.size:
            out[np.concatenate(orders[rank])] = np.concatenate(
                feature_replies[rank], axis=0
            )
        results.append(out)
        node.gpu_clock[rank].advance(
            costmodel.elementwise_time(out.nbytes * 2), phase=phase,
            args={"step": "reorder", "rows": int(rows.size),
                  "bytes": int(out.nbytes)},
        )
    t5 = step_mark()
    trace.step_times["reorder"] = t5 - t4
    trace.total_time = t5 - t_start

    reg = metrics.get_registry()
    for step, dt in trace.step_times.items():
        reg.counter("nccl_gather_step_seconds_total", step=step).inc(dt)
    reg.counter("nccl_gather_bytes_total", payload="features").inc(
        trace.step4_bytes_per_rank * nr
    )
    reg.counter("nccl_gather_bytes_total", payload="features_remote").inc(
        trace.step4_remote_bytes_per_rank * nr
    )
    return results, trace
