"""Multi-layer neighbor sampling over the multi-GPU graph store.

Single-layer sampling = the Algorithm-1 sampler + AppendUnique; multi-layer
sub-graph sampling "can be done by simply stacking multiple single-layer
sub-graph samplings" (paper §III-C2).  The output keeps WholeGraph's
*prefix property*: each frontier's node list begins with the previous
frontier in order, so one feature gather for the deepest frontier feeds
every layer (targets of layer ``l`` are a prefix of the inputs of layer
``l``).

The functional core (:func:`sample_layer`) is shared with the CPU baselines,
which run the same math but charge host-CPU costs instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware import costmodel
from repro.ops.append_unique import append_unique, sort_based_append_unique
from repro.ops.sampling import batch_sample_without_replacement
from repro.telemetry import metrics
from repro.utils.scan import exclusive_prefix_sum


def sample_layer(
    indptr: np.ndarray,
    indices: np.ndarray,
    targets: np.ndarray,
    fanout: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample up to ``fanout`` neighbors (without replacement) per target.

    Returns ``(flat_neighbors, counts, edge_positions)``:
    ``flat_neighbors`` holds each target's sampled neighbors contiguously in
    target order, ``counts`` is per-target (``min(degree, fanout)``), and
    ``edge_positions`` gives each sampled edge's index into the graph's
    ``indices`` array — the handle for fetching per-edge features/weights,
    which WholeGraph stores alongside the edges (paper §III-B).
    """
    targets = np.asarray(targets, dtype=np.int64)
    starts = indptr[targets]
    deg = indptr[targets + 1] - starts
    counts = np.minimum(deg, fanout)
    out_offsets = exclusive_prefix_sum(counts)
    total = int(counts.sum())
    flat = np.empty(total, dtype=np.int64)
    positions = np.empty(total, dtype=np.int64)

    # Case M >= N: take every neighbor; "each thread can simply output its
    # id" (paper §III-C1).  Vectorised variable-length slice copy.
    take_all = deg <= fanout
    if np.any(take_all):
        c = counts[take_all]
        reps = np.repeat(starts[take_all], c)
        within = np.arange(int(c.sum()), dtype=np.int64) - np.repeat(
            exclusive_prefix_sum(c), c
        )
        src_pos = reps + within
        dst_pos = np.repeat(out_offsets[take_all], c) + within
        flat[dst_pos] = indices[src_pos]
        positions[dst_pos] = src_pos

    # Case M < N: Algorithm 1, batched over all such targets.
    need_sample = ~take_all
    if np.any(need_sample):
        slots = batch_sample_without_replacement(
            deg[need_sample], fanout, rng
        )
        edge_pos = starts[need_sample][:, None] + slots
        sampled = indices[edge_pos]
        dst = out_offsets[need_sample][:, None] + np.arange(fanout)[None, :]
        flat[dst.ravel()] = sampled.ravel()
        positions[dst.ravel()] = edge_pos.ravel()
    return flat, counts, positions


@dataclass
class LayerBlock:
    """One sampled bipartite layer: aggregates sources into targets.

    ``indptr``/``indices`` form a rectangular CSR with ``num_targets`` rows;
    column IDs index the layer's *unique source list* (of which the targets
    are the first ``num_targets`` entries — the prefix property).
    """

    indptr: np.ndarray
    indices: np.ndarray
    num_targets: int
    num_src: int
    duplicate_counts: np.ndarray
    #: per-sampled-edge index into the parent graph's edge array, for
    #: fetching edge features/weights stored with the source node
    edge_positions: np.ndarray | None = None

    @property
    def num_edges(self) -> int:
        return int(self.indices.shape[0])


@dataclass
class SampledSubgraph:
    """The full multi-layer sample for one mini-batch."""

    #: stored node IDs per frontier; ``frontiers[0]`` is the seed batch and
    #: ``frontiers[l]`` is a prefix of ``frontiers[l+1]``
    frontiers: list[np.ndarray]
    #: ``blocks[l]`` aggregates ``frontiers[l+1]`` into ``frontiers[l]``
    blocks: list[LayerBlock]

    @property
    def seeds(self) -> np.ndarray:
        return self.frontiers[0]

    @property
    def input_nodes(self) -> np.ndarray:
        """Nodes whose features must be gathered (deepest frontier)."""
        return self.frontiers[-1]

    @property
    def num_layers(self) -> int:
        return len(self.blocks)

    def total_edges(self) -> int:
        return sum(b.num_edges for b in self.blocks)

    def validate_prefix_property(self) -> None:
        """Assert each frontier prefixes the next (tests call this)."""
        for l in range(len(self.frontiers) - 1):
            a, b = self.frontiers[l], self.frontiers[l + 1]
            if not np.array_equal(a, b[: a.shape[0]]):
                raise AssertionError(f"frontier {l} is not a prefix of {l+1}")


class NeighborSampler:
    """Samples multi-layer sub-graphs from a :class:`MultiGpuGraphStore`."""

    def __init__(self, store, fanouts, charge: bool = True,
                 unique_impl: str = "hash"):
        """``fanouts[l]`` is the per-target sample count of layer ``l``
        (seed-side first).  ``charge=False`` disables cost accounting
        (used when the functional result alone is wanted).

        ``unique_impl`` selects the de-duplication kernel: ``"hash"`` is
        WholeGraph's bucketed hash table; ``"sort"`` is the sort-based
        unique other frameworks use (slower — the §III-C2 ablation).
        """
        self.store = store
        self.fanouts = [int(f) for f in fanouts]
        self.charge = charge
        if unique_impl not in ("hash", "sort"):
            raise ValueError("unique_impl must be 'hash' or 'sort'")
        self.unique_impl = unique_impl

    def sample(
        self, seeds, rank: int, rng: np.random.Generator,
        phase: str = "sample",
    ) -> SampledSubgraph:
        """Sample the sub-graph for ``seeds`` on GPU ``rank``."""
        store = self.store
        node = store.node
        seeds = np.asarray(seeds, dtype=np.int64)
        frontiers = [seeds]
        blocks: list[LayerBlock] = []
        for fanout in self.fanouts:
            targets = frontiers[-1]
            flat, counts, positions = sample_layer(
                store.csr.indptr, store.csr.indices, targets, fanout, rng
            )
            if self.unique_impl == "hash":
                uni = append_unique(targets, flat)
            else:
                uni = sort_based_append_unique(targets, flat)
            # preallocate the block's CSR bounds: one cumsum straight into
            # the target buffer instead of concatenate+astype temporaries
            indptr = np.empty(counts.shape[0] + 1, dtype=np.int64)
            indptr[0] = 0
            np.cumsum(counts, out=indptr[1:])
            blocks.append(
                LayerBlock(
                    indptr=indptr,
                    indices=uni.neighbor_subgraph_ids,
                    num_targets=targets.shape[0],
                    num_src=uni.num_unique,
                    duplicate_counts=uni.duplicate_counts,
                    edge_positions=positions,
                )
            )
            frontiers.append(uni.unique_nodes)

            if self.charge:
                edges = int(counts.sum())
                # read the neighbor lists of the targets (CSR rows live with
                # the owning GPU; remote rows cross NVLink)
                owners = store.rank_of(targets)
                remote = float(np.count_nonzero(owners != rank)) / max(
                    targets.shape[0], 1
                )
                seg = max(float(np.mean(counts)), 1.0) * 8.0
                if getattr(store, "structure_location", "device") == "host":
                    # out-of-core stores pin the CSR topology in host DRAM:
                    # the row reads come zero-copy over PCIe instead of the
                    # NVLink curve (ownership no longer matters — every
                    # read crosses the host uplink)
                    t = costmodel.zero_copy_gather_time(edges * 8.0, seg)
                else:
                    t = costmodel.gather_time(
                        edges * 8.0, seg, node.num_gpus,
                        remote_fraction=remote,
                    )
                # the fused sampling kernel itself
                t += costmodel.gpu_sample_time(edges)
                if self.unique_impl == "hash":
                    # each key probes ~2 slots on average at the table's
                    # 0.5 load factor (probe_rounds is the *max* chain, not
                    # the mean — charging it would model a serial worst
                    # case the parallel kernel never pays)
                    t += costmodel.hash_table_time(
                        (targets.shape[0] + edges) * 2
                    )
                else:
                    t += costmodel.sort_unique_time(targets.shape[0] + edges)
                node.gpu_clock[rank].advance(
                    t, phase=phase, category="sampling",
                    args={"layer": len(blocks) - 1, "fanout": fanout,
                          "targets": int(targets.shape[0]),
                          "edges": edges,
                          "unique_src": int(uni.num_unique)},
                )
                reg = metrics.get_registry()
                reg.counter("sampler_edges_total").inc(edges)
                reg.counter("sampler_layers_total").inc(1)
                # realised fan-out per target (min(degree, fanout)) and the
                # frontier growth the AppendUnique dedup left behind
                reg.histogram("sampler_fanout").observe(counts)
                reg.histogram("sampler_frontier_rows").observe(
                    uni.num_unique
                )
        return SampledSubgraph(frontiers=frontiers, blocks=blocks)
