"""Segment reductions over CSR-sorted edges.

The message-passing primitives of Eq. (1) reduce per-edge values into
per-target-node values.  Because WholeGraph stores the sub-graph adjacency
in CSR, edges of one target are contiguous and the reductions map onto
``np.*.reduceat`` (the GPU kernels reduce per-row with one warp per row).

All functions take an ``indptr`` (length ``num_segments + 1``) and flat
per-edge ``values`` whose leading dimension is ``num_edges``.
"""

from __future__ import annotations

import numpy as np


def _check(indptr: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, int]:
    indptr = np.asarray(indptr, dtype=np.int64)
    if indptr.ndim != 1 or indptr.shape[0] < 1:
        raise ValueError("indptr must be a 1-D array of segment bounds")
    if indptr[-1] != values.shape[0]:
        raise ValueError(
            f"values length {values.shape[0]} != indptr[-1] ({indptr[-1]})"
        )
    return indptr, indptr.shape[0] - 1


def segment_sum(values: np.ndarray, indptr) -> np.ndarray:
    """Per-segment sum; empty segments produce zeros.

    Implemented as a prefix-sum difference (``cumsum[end] - cumsum[start]``)
    rather than ``np.add.reduceat``: the cumsum runs at memory bandwidth on
    2-D inputs where reduceat degenerates to a Python-level loop per
    segment.  Accumulation is in float64 to keep long prefix sums stable,
    then cast back.

    The accumulator is column-major (Fortran order): the axis-0 cumsum then
    walks each column contiguously instead of striding row-by-row across
    the whole ``(E, H)`` buffer, which is several times faster at the edge
    counts the training backward pass hits.  Only the memory layout
    changes — each column still sees the identical sequential float64
    addition chain, so the result is bit-for-bit the same.
    """
    values = np.asarray(values)
    indptr, n = _check(np.asarray(indptr), values)
    out_shape = (n,) + values.shape[1:]
    if values.shape[0] == 0 or n == 0:
        return np.zeros(out_shape, dtype=values.dtype)
    acc_dtype = np.float64 if values.dtype.kind == "f" else np.int64
    cs = np.empty(
        (values.shape[0] + 1,) + values.shape[1:], dtype=acc_dtype, order="F"
    )
    cs[0] = 0
    cs[1:] = values
    np.cumsum(cs[1:], axis=0, out=cs[1:])
    out = cs[indptr[1:]] - cs[indptr[:-1]]
    return out.astype(values.dtype, copy=False)


def _nonempty_reduceat(ufunc, values, indptr, n):
    """Apply ``ufunc.reduceat`` over the non-empty segments only.

    ``reduceat`` mis-handles empty segments (equal adjacent indices yield a
    single element instead of an identity), so we reduce only at the starts
    of non-empty segments — those are strictly increasing, and consecutive
    non-empty starts bound each segment exactly.
    """
    out = np.zeros((n,) + values.shape[1:], dtype=values.dtype)
    nonempty = indptr[1:] > indptr[:-1]
    starts = indptr[:-1][nonempty]
    if starts.size:
        out[nonempty] = ufunc.reduceat(values, starts, axis=0)
    return out


def scatter_add_rows(
    num_rows: int, indices: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """``out[indices[e]] += values[e]`` — the atomic-add scatter, fast.

    Sorts the edges by destination row and reduces each run with the
    prefix-sum trick; orders of magnitude faster than ``np.add.at`` on 2-D
    payloads while producing the identical result.
    """
    indices = np.asarray(indices, dtype=np.int64)
    values = np.asarray(values)
    out = np.zeros((num_rows,) + values.shape[1:], dtype=values.dtype)
    if indices.size == 0:
        return out
    order = np.argsort(indices, kind="stable")
    si = indices[order]
    sv = values[order]
    # run boundaries in the sorted destination array
    starts = np.flatnonzero(np.concatenate(([True], si[1:] != si[:-1])))
    bounds = np.concatenate((starts, [si.shape[0]])).astype(np.int64)
    sums = segment_sum(sv, bounds) if starts.size else sv[:0]
    out[si[starts]] = sums
    return out


def segment_mean(values: np.ndarray, indptr) -> np.ndarray:
    """Per-segment mean; empty segments produce zeros."""
    values = np.asarray(values)
    indptr = np.asarray(indptr, dtype=np.int64)
    s = segment_sum(values, indptr)
    counts = (indptr[1:] - indptr[:-1]).astype(s.dtype)
    counts = np.maximum(counts, 1)
    return s / counts.reshape((-1,) + (1,) * (values.ndim - 1))


def segment_max(values: np.ndarray, indptr) -> np.ndarray:
    """Per-segment max; empty segments produce zeros (not ``-inf``)."""
    values = np.asarray(values)
    indptr, n = _check(np.asarray(indptr), values)
    if values.shape[0] == 0 or n == 0:
        return np.zeros((n,) + values.shape[1:], dtype=values.dtype)
    return _nonempty_reduceat(np.maximum, values, indptr, n)


def segment_softmax(values: np.ndarray, indptr) -> np.ndarray:
    """Numerically-stable softmax within each segment (GAT attention)."""
    values = np.asarray(values)
    indptr, n = _check(np.asarray(indptr), values)
    if values.shape[0] == 0:
        return values.copy()
    seg_ids = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(indptr)
    )
    mx = segment_max(values, indptr)
    shifted = values - mx[seg_ids]
    ex = np.exp(shifted)
    denom = segment_sum(ex, indptr)
    return ex / np.maximum(denom[seg_ids], np.finfo(ex.dtype).tiny)


def segment_ids_from_indptr(indptr) -> np.ndarray:
    """Expand CSR bounds into a per-edge segment-ID array."""
    indptr = np.asarray(indptr, dtype=np.int64)
    return np.repeat(
        np.arange(indptr.shape[0] - 1, dtype=np.int64), np.diff(indptr)
    )
