"""Negative-edge sampling for link prediction.

The paper motivates GNNs with link prediction among its target tasks (§I).
Training a link predictor needs *negative* examples — node pairs that are
not edges.  :func:`sample_negative_edges` draws uniform corruptions with
rejection against the CSR adjacency, vectorised in rounds: draw candidates,
test membership against the row-sorted adjacency, redraw the hits.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.ops.segment import segment_ids_from_indptr


def sort_rows(csr: CSRGraph) -> CSRGraph:
    """Return a copy of ``csr`` with each neighbor list sorted ascending.

    Vectorised as one lexsort over (row, neighbor) — no per-row loop.
    """
    rows = segment_ids_from_indptr(csr.indptr)
    order = np.lexsort((csr.indices, rows))
    weights = (
        None if csr.edge_weights is None else csr.edge_weights[order]
    )
    return CSRGraph(csr.indptr.copy(), csr.indices[order],
                    edge_weights=weights, num_nodes=csr.num_nodes)


def edges_exist(sorted_csr: CSRGraph, src, dst) -> np.ndarray:
    """Vectorised membership test: is ``(src[i], dst[i])`` an edge?

    Requires row-sorted neighbor lists (:func:`sort_rows`).  Works on the
    flat ``indices`` array: within row ``r`` the entries are ascending, so
    a global ``searchsorted`` over the *pair key* ``row * N + neighbor``
    (which is globally ascending in CSR-with-sorted-rows order) finds each
    query in one pass.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    n = sorted_csr.num_nodes
    rows = segment_ids_from_indptr(sorted_csr.indptr)
    edge_keys = rows * n + sorted_csr.indices  # globally ascending
    query_keys = src * n + dst
    pos = np.searchsorted(edge_keys, query_keys)
    found = np.zeros(src.shape[0], dtype=bool)
    in_range = pos < edge_keys.shape[0]
    found[in_range] = edge_keys[pos[in_range]] == query_keys[in_range]
    return found


def sample_positive_edges(
    csr: CSRGraph, num_samples: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Uniformly sample existing edges, returned as ``(src, dst)``."""
    if csr.num_edges == 0:
        raise ValueError("graph has no edges to sample")
    eids = rng.integers(0, csr.num_edges, size=num_samples)
    src = np.searchsorted(csr.indptr[1:], eids, side="right")
    return src.astype(np.int64), csr.indices[eids]


def sample_negative_edges(
    csr: CSRGraph,
    num_samples: int,
    rng: np.random.Generator,
    max_rounds: int = 32,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample node pairs that are *not* edges (and not self-loops).

    Rejection sampling in vectorised rounds; on sparse graphs one round
    almost always suffices.  Raises if the graph is so dense that
    ``max_rounds`` redraws cannot find enough non-edges.
    """
    sorted_csr = sort_rows(csr)
    src = rng.integers(0, csr.num_nodes, size=num_samples).astype(np.int64)
    dst = rng.integers(0, csr.num_nodes, size=num_samples).astype(np.int64)
    for _ in range(max_rounds):
        bad = (src == dst) | edges_exist(sorted_csr, src, dst)
        n_bad = int(bad.sum())
        if n_bad == 0:
            return src, dst
        src[bad] = rng.integers(0, csr.num_nodes, size=n_bad)
        dst[bad] = rng.integers(0, csr.num_nodes, size=n_bad)
    raise RuntimeError(
        "could not find enough negative edges (graph too dense?)"
    )
