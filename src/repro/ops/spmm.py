"""Generalised sparse-dense matrix multiplication (g-SpMM, paper §III-C4).

Message passing (Eq. 1) over a CSR sub-graph is a g-SpMM: per edge
``(dst_row, src_col)`` compute a message from the source node feature (times
an optional edge weight) and reduce into the destination row.

The three pieces the paper describes:

- **forward** — directly on the CSR matrix (:func:`gspmm_sum` /
  :func:`gspmm_mean`);
- **backward w.r.t. edge weights** — a g-SDDMM on the same CSR
  (:mod:`repro.ops.sddmm`);
- **backward w.r.t. dense input** — g-SpMM on the *transposed* CSR, done
  without materialising the transpose by scattering with atomic adds.  The
  duplicate-count array produced by AppendUnique identifies sub-graph nodes
  sampled exactly once, whose scatter needs no atomic and degrades to a
  plain store (the cost model rewards this; :func:`atomic_elision_stats`
  reports the split).

Two interchangeable kernels:

- the *reference* kernels (``reference_*``) are literal data-parallel
  transcriptions (edge-message materialisation + segment reduce, and an
  atomic-add scatter) used by the equivalence tests;
- the default entry points route through ``scipy.sparse`` CSR matmul, the
  fast compiled path, and are verified against the reference kernels.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.ops.segment import segment_mean, segment_sum


def _csr_matrix(indptr, indices, num_src: int, data=None) -> sp.csr_matrix:
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    if data is None:
        data = np.ones(indices.shape[0], dtype=np.float32)
    return sp.csr_matrix(
        (np.asarray(data, dtype=np.float32), indices, indptr),
        shape=(indptr.shape[0] - 1, num_src),
    )


# ---------------------------------------------------------------------------
# Forward
# ---------------------------------------------------------------------------

def gspmm_sum(csr_indptr, csr_indices, features, edge_weights=None) -> np.ndarray:
    """``out[t] = sum_{s in N(t)} w_{s,t} * x[s]`` over the CSR rows."""
    features = np.asarray(features, dtype=np.float32)
    adj = _csr_matrix(csr_indptr, csr_indices, features.shape[0], edge_weights)
    return np.asarray(adj @ features)


def gspmm_mean(csr_indptr, csr_indices, features, edge_weights=None) -> np.ndarray:
    """Mean-aggregated message passing (GraphSage's aggregator)."""
    indptr = np.asarray(csr_indptr, dtype=np.int64)
    out = gspmm_sum(indptr, csr_indices, features, edge_weights)
    deg = np.maximum(indptr[1:] - indptr[:-1], 1).astype(np.float32)
    out /= deg[:, None]
    return out


def reference_gspmm_sum(csr_indptr, csr_indices, features,
                        edge_weights=None) -> np.ndarray:
    """Edge-materialising reference: gather messages, segment-reduce."""
    msg = _edge_messages(
        np.asarray(csr_indices, np.int64), np.asarray(features), edge_weights
    )
    return segment_sum(msg, csr_indptr)


def reference_gspmm_mean(csr_indptr, csr_indices, features,
                         edge_weights=None) -> np.ndarray:
    """Reference mean aggregation."""
    msg = _edge_messages(
        np.asarray(csr_indices, np.int64), np.asarray(features), edge_weights
    )
    return segment_mean(msg, csr_indptr)


def _edge_messages(
    csr_indices: np.ndarray, features: np.ndarray, edge_weights
) -> np.ndarray:
    msg = features[csr_indices]
    if edge_weights is not None:
        msg = msg * np.asarray(edge_weights, dtype=features.dtype)[:, None]
    return msg


# ---------------------------------------------------------------------------
# Backward w.r.t. dense features
# ---------------------------------------------------------------------------

def gspmm_backward_features(
    csr_indptr,
    csr_indices,
    grad_out: np.ndarray,
    num_src: int,
    edge_weights=None,
    duplicate_counts=None,
) -> tuple[np.ndarray, dict]:
    """Gradient of :func:`gspmm_sum` w.r.t. the dense input features.

    Mathematically g-SpMM on the transposed CSR; executed as a scatter into
    source rows (``A^T g``), with :func:`atomic_elision_stats` reporting how
    many scatters the duplicate-count optimisation turns into plain stores.
    """
    grad_out = np.asarray(grad_out, dtype=np.float32)
    adj = _csr_matrix(csr_indptr, csr_indices, num_src, edge_weights)
    grad_features = np.asarray(adj.T @ grad_out)
    stats = atomic_elision_stats(csr_indices, duplicate_counts)
    return grad_features, stats


def reference_gspmm_backward_features(
    csr_indptr,
    csr_indices,
    grad_out: np.ndarray,
    num_src: int,
    edge_weights=None,
    duplicate_counts=None,
) -> tuple[np.ndarray, dict]:
    """Literal scatter implementation: plain store for duplicate-count-1
    rows, atomic add (``np.add.at``) for the rest."""
    indptr = np.asarray(csr_indptr, dtype=np.int64)
    indices = np.asarray(csr_indices, dtype=np.int64)
    grad_out = np.asarray(grad_out)
    contrib = np.repeat(grad_out, np.diff(indptr), axis=0)
    if edge_weights is not None:
        contrib = contrib * np.asarray(edge_weights, dtype=contrib.dtype)[:, None]
    grad_features = np.zeros((num_src,) + grad_out.shape[1:], dtype=grad_out.dtype)
    stats = atomic_elision_stats(indices, duplicate_counts)
    if duplicate_counts is None:
        np.add.at(grad_features, indices, contrib)
        return grad_features, stats
    once = np.asarray(duplicate_counts, dtype=np.int64)[indices] == 1
    grad_features[indices[once]] = contrib[once]
    np.add.at(grad_features, indices[~once], contrib[~once])
    return grad_features, stats


def atomic_elision_stats(csr_indices, duplicate_counts) -> dict[str, int]:
    """How many backward scatters are plain stores vs atomic adds."""
    indices = np.asarray(csr_indices, dtype=np.int64)
    if duplicate_counts is None:
        return {"plain_stores": 0, "atomic_adds": int(indices.shape[0])}
    once = np.asarray(duplicate_counts, dtype=np.int64)[indices] == 1
    return {
        "plain_stores": int(once.sum()),
        "atomic_adds": int((~once).sum()),
    }


def gspmm_mean_backward_features(
    csr_indptr,
    csr_indices,
    grad_out: np.ndarray,
    num_src: int,
    duplicate_counts=None,
) -> tuple[np.ndarray, dict]:
    """Backward of :func:`gspmm_mean` w.r.t. input features."""
    indptr = np.asarray(csr_indptr, dtype=np.int64)
    deg = np.maximum(np.diff(indptr), 1).astype(np.float32)
    scaled = np.asarray(grad_out, dtype=np.float32) / deg[:, None]
    return gspmm_backward_features(
        indptr, csr_indices, scaled, num_src,
        duplicate_counts=duplicate_counts,
    )
