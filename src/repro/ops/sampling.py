"""Parallel random sampling without replacement (paper Algorithm 1).

WholeGraph needs, for every target node, ``M`` random neighbors drawn
*without replacement* from its ``N`` neighbors.  Rejection-free parallel
generation is non-trivial because each lane must avoid every other lane's
pick.  The paper adopts the path-doubling scheme of Rajan, Ghosh & Gupta
(IPL 1989):

1. lane ``i`` draws ``r[i]`` uniform in ``[0, N-1-i]`` — a parallel analogue
   of Floyd's sampling;
2. the draws are sorted (the paper packs the 32-bit value and the 32-bit
   lane index into one 64-bit key and radix-sorts once — reproduced here);
3. colliding draws are redirected to the "reserved" values
   ``{N-M, …, N-1}`` through a successor ``chain`` array resolved with
   path doubling (``chain[i] = chain[chain[i]]`` for ``log M`` rounds);
4. each lane emits either its own draw (first of its value group) or the
   redirect of its predecessor in the sorted order.

The output is always ``M`` *distinct* neighbor indices, and the marginal
distribution is uniform — both are property-tested.

Two entry points:

- :func:`parallel_sample_without_replacement` — a single (N, M) instance,
  literal transcription of Algorithm 1;
- :func:`batch_sample_without_replacement` — the batched form used by the
  training pipeline: one CUDA thread block per target node becomes one row
  of a ``(B, M)`` array program, all rows resolved simultaneously.
"""

from __future__ import annotations

import numpy as np


def _parallel_sort_packed(r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The paper's radix-sort trick: pack value<<32 | index, sort once.

    Returns ``(s, p)``: sorted values and the original index of each.
    Packing makes the sort stable by construction (ties broken by index),
    exactly like the 64-bit radix sort in the CUDA implementation.
    """
    idx = np.arange(r.shape[-1], dtype=np.uint64)
    packed = (r.astype(np.uint64) << np.uint64(32)) | idx
    packed.sort(axis=-1)
    s = (packed >> np.uint64(32)).astype(np.int64)
    p = (packed & np.uint64(0xFFFFFFFF)).astype(np.int64)
    return s, p


def _path_doubling(chain: np.ndarray) -> np.ndarray:
    """Resolve successor chains: ``chain[i] <- chain[chain[i]]`` to fixpoint.

    Converges in ``ceil(log2(len))`` rounds — the classic pointer-jumping
    primitive (line 12 of Algorithm 1).
    """
    m = chain.shape[-1]
    rounds = max(1, int(np.ceil(np.log2(max(m, 2)))))
    for _ in range(rounds):
        chain = np.take_along_axis(
            chain, chain, axis=-1
        ) if chain.ndim > 1 else chain[chain]
    return chain


def parallel_sample_without_replacement(
    neighbor_count: int,
    max_sample: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Algorithm 1 for a single target node.

    Parameters
    ----------
    neighbor_count:
        ``N``, the node's degree.
    max_sample:
        ``M``, the number of samples; must satisfy ``M <= N`` (for
        ``M >= N`` the caller simply takes all neighbors — paper §III-C1).

    Returns
    -------
    np.ndarray
        ``M`` distinct neighbor indices in ``[0, N)``.
    """
    n, m = int(neighbor_count), int(max_sample)
    if m > n:
        raise ValueError("Algorithm 1 requires M <= N; take all neighbors instead")
    if m == 0:
        return np.empty(0, dtype=np.int64)
    out = batch_sample_without_replacement(
        np.array([n], dtype=np.int64), m, rng
    )
    return out[0]


def batch_sample_without_replacement(
    neighbor_counts: np.ndarray,
    max_sample: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Algorithm 1 batched over ``B`` target nodes (one row per node).

    Every row must have ``N_b >= M`` (callers split off the take-all rows
    first).  Returns a ``(B, M)`` int64 array of distinct indices per row.
    """
    counts = np.asarray(neighbor_counts, dtype=np.int64)
    m = int(max_sample)
    b = counts.shape[0]
    if m == 0 or b == 0:
        return np.empty((b, m), dtype=np.int64)
    if np.any(counts < m):
        raise ValueError("every row must satisfy N >= M")

    lanes = np.arange(m, dtype=np.int64)
    # line 2: r[i] ~ uniform[0, N-1-i]
    spans = counts[:, None] - lanes[None, :]  # N - i, always >= 1
    r = (rng.random((b, m)) * spans).astype(np.int64)
    # line 3: chain[i] = i
    chain = np.broadcast_to(lanes, (b, m)).copy()

    # line 5: s, p = parallel_sort(r)  (packed 64-bit radix sort)
    s, p = _parallel_sort_packed(r)

    # line 7: q[p[i]] = i
    q = np.empty_like(p)
    np.put_along_axis(q, p, np.broadcast_to(lanes, (b, m)), axis=1)

    # lines 8-10: last occurrence of each value group with s[i] >= N-M
    # claims slot chain[N - s[i] - 1] = p[i]
    is_group_end = np.ones((b, m), dtype=bool)
    is_group_end[:, :-1] = s[:, :-1] != s[:, 1:]
    eligible = is_group_end & (s >= (counts[:, None] - m))
    slots = counts[:, None] - s - 1  # N - s[i] - 1, in [0, M) when eligible
    rows = np.broadcast_to(np.arange(b)[:, None], (b, m))
    chain[rows[eligible], slots[eligible]] = p[eligible]

    # line 12: path doubling
    chain = _path_doubling(chain)

    # line 14: last[i] = N - chain[i] - 1
    last = counts[:, None] - chain - 1

    # lines 16-22: emit own draw for the first of each value group, else the
    # redirect of the predecessor in sorted order.
    res = np.empty((b, m), dtype=np.int64)
    qi = q  # q[i] = position of lane i in sorted order
    prev_pos = qi - 1
    first_of_group = np.zeros((b, m), dtype=bool)
    first_of_group[:, 0] = True  # line 17: i == 0
    first_of_group |= qi == 0
    safe_prev = np.maximum(prev_pos, 0)
    s_at_q = np.take_along_axis(s, qi, axis=1)
    s_at_prev = np.take_along_axis(s, safe_prev, axis=1)
    first_of_group |= s_at_q != s_at_prev
    res[first_of_group] = r[first_of_group]
    # res[i] = last[p[q[i]-1]] for the rest
    p_prev = np.take_along_axis(p, safe_prev, axis=1)
    last_redirect = np.take_along_axis(last, p_prev, axis=1)
    res[~first_of_group] = last_redirect[~first_of_group]
    return res


def batch_sample_with_replacement(
    neighbor_counts: np.ndarray,
    max_sample: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """With-replacement neighbor sampling (the cheaper variant some
    frameworks default to for very high fan-outs).

    Trivially parallel — every lane draws independently — at the cost of
    duplicate neighbors per target, which inflates downstream AppendUnique
    and gather work.  Provided for completeness and the sampler ablations;
    WholeGraph itself samples *without* replacement (paper §III-C1).
    """
    counts = np.asarray(neighbor_counts, dtype=np.int64)
    m = int(max_sample)
    b = counts.shape[0]
    if m == 0 or b == 0:
        return np.empty((b, m), dtype=np.int64)
    if np.any(counts < 1):
        raise ValueError("every row needs at least one neighbor")
    return (rng.random((b, m)) * counts[:, None]).astype(np.int64)


def reference_sample_without_replacement(
    neighbor_count: int, max_sample: int, rng: np.random.Generator
) -> np.ndarray:
    """Sequential reference sampler (Fisher–Yates partial shuffle).

    The oracle the parallel sampler is property-tested against, and the
    sampler the CPU baselines (DGL/PyG pipelines) use functionally.
    """
    n, m = int(neighbor_count), int(max_sample)
    if m >= n:
        return np.arange(n, dtype=np.int64)
    return rng.choice(n, size=m, replace=False).astype(np.int64)
