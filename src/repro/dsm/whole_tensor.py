"""WholeTensor: a typed 2-D array stored in WholeMemory.

This is the object WholeGraph stores node features (and CSR arrays) in:
rows are partitioned across GPUs in contiguous blocks, and any GPU can gather
an arbitrary set of rows in a single "kernel" — the shared-memory global
gather of paper §III-C3 (right side of Fig. 4).

Two coupled behaviours:

- **functional**: ``gather``/``scatter`` really move the data (NumPy fancy
  indexing over the partition buffers);
- **performance**: every access charges the calling GPU's clock using the
  Fig. 8 segment-size bandwidth curve, with the remote fraction computed
  from the actual owner distribution of the requested rows.

``materialize=False`` creates an accounting-only tensor (no backing NumPy
data) so full-scale footprints like ogbn-papers100M's 53 GB feature matrix
can be modelled without 53 GB of host RAM (Table IV).
"""

from __future__ import annotations

import numpy as np

from repro.hardware import costmodel
from repro.hardware.machine import SimNode
from repro.dsm.whole_memory import WholeMemory, split_evenly
from repro.telemetry import metrics


class WholeTensor:
    """A ``(num_rows, num_cols)`` array partitioned row-wise across GPUs."""

    def __init__(
        self,
        node: SimNode,
        num_rows: int,
        num_cols: int,
        dtype=np.float32,
        tag: str = "wholetensor",
        charge_setup: bool = True,
        materialize: bool = True,
        rows_per_rank: list[int] | None = None,
        partition: str = "block",
    ):
        """``partition`` selects the row layout: ``"block"`` gives each rank
        one contiguous range (the layout the graph store's hash partition
        produces), ``"cyclic"`` deals rows round-robin (``owner = row % N``)
        — the balanced layout for arbitrary access patterns, matching the
        chunked/strided placements of the open-source WholeGraph.
        ``rows_per_rank`` is only meaningful for block partitions."""
        self.node = node
        self.num_rows = int(num_rows)
        self.num_cols = int(num_cols)
        self.dtype = np.dtype(dtype)
        self.row_bytes = self.num_cols * self.dtype.itemsize
        self.materialized = materialize
        self.tag = tag
        if partition not in ("block", "cyclic"):
            raise ValueError("partition must be 'block' or 'cyclic'")
        if partition == "cyclic" and rows_per_rank is not None:
            raise ValueError("cyclic partition derives rows_per_rank itself")
        self.partition = partition

        if partition == "cyclic":
            n = node.num_gpus
            rows_per_rank = [
                (self.num_rows - r + n - 1) // n for r in range(n)
            ]
        elif rows_per_rank is None:
            rows_per_rank = split_evenly(self.num_rows, node.num_gpus)
        elif (
            len(rows_per_rank) != node.num_gpus
            or sum(rows_per_rank) != self.num_rows
        ):
            raise ValueError(
                "rows_per_rank must have one entry per GPU and sum to num_rows"
            )
        self.rows_per_rank = [int(r) for r in rows_per_rank]
        partition_bytes = [r * self.row_bytes for r in self.rows_per_rank]
        if materialize:
            self.memory = WholeMemory(
                node, partition_bytes, tag=tag, charge_setup=charge_setup
            )
            self._parts = [
                buf.view(self.dtype).reshape(rows, self.num_cols)
                for buf, rows in zip(self.memory.buffers, self.rows_per_rank)
            ]
        else:
            # accounting-only: reserve device memory and charge setup, but
            # keep no host-side data.
            self.memory = None
            self._parts = None
            self._allocations = [
                node.gpu_memory[r].allocate(partition_bytes[r], tag=tag)
                for r in range(node.num_gpus)
            ]
            if charge_setup:
                t = costmodel.dsm_setup_time(sum(partition_bytes))
                for clock in node.gpu_clock:
                    clock.advance(t, phase="dsm_setup")
                node.sync()

        self.row_offsets = np.concatenate(
            ([0], np.cumsum(self.rows_per_rank))
        ).astype(np.int64)
        #: cumulative access statistics (read by telemetry)
        self.stats = {
            "gather_calls": 0,
            "gather_rows": 0,
            "gather_bytes": 0,
            "gather_remote_bytes": 0,
            "gather_time": 0.0,
        }

    # -- layout --------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_rows, self.num_cols)

    @property
    def total_bytes(self) -> int:
        return self.num_rows * self.row_bytes

    def rank_of_row(self, rows) -> np.ndarray:
        """Owning rank of each (global) row index."""
        return self._owners_and_local(np.asarray(rows, dtype=np.int64))[0]

    def _owners_and_local(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Map global rows to ``(owner rank, local index)`` per layout."""
        if self.partition == "cyclic":
            n = self.node.num_gpus
            return rows % n, rows // n
        owners = (
            np.searchsorted(self.row_offsets, rows, side="right") - 1
        ).astype(np.int64)
        return owners, rows - self.row_offsets[owners]

    def local_part(self, rank: int) -> np.ndarray:
        """The rows resident on ``rank`` (a view, not a copy)."""
        self._require_data()
        return self._parts[rank]

    def _require_data(self) -> None:
        if not self.materialized:
            raise RuntimeError(
                "tensor was created with materialize=False (accounting only)"
            )

    def _check_rows(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.num_rows):
            raise IndexError(
                f"row index out of range [0, {self.num_rows}) "
                f"(got min={rows.min()}, max={rows.max()})"
            )
        return rows

    # -- bulk load (host -> device over PCIe) ---------------------------------

    def load_from_host(self, array: np.ndarray, phase: str = "load") -> float:
        """Populate the tensor from a host array, charging PCIe streams.

        Each rank DMA-copies its own partition concurrently; returns the
        simulated per-rank transfer time.
        """
        self._require_data()
        array = np.ascontiguousarray(array, dtype=self.dtype).reshape(
            self.num_rows, self.num_cols
        )
        t = 0.0
        for rank in range(self.node.num_gpus):
            if self.partition == "cyclic":
                part = array[rank :: self.node.num_gpus]
            else:
                lo, hi = self.row_offsets[rank], self.row_offsets[rank + 1]
                part = array[lo:hi]
            self._parts[rank][:] = part
            t = costmodel.pcie_host_to_gpu_time(
                part.shape[0] * self.row_bytes, shared=True
            )
            self.node.gpu_clock[rank].advance(
                t, phase=phase, category="pcie",
                args={"rows": int(part.shape[0]),
                      "bytes": int(part.shape[0] * self.row_bytes),
                      "tensor": self.tag},
            )
        self.node.sync()
        return t

    # -- the shared-memory global gather (one kernel) -------------------------

    def gather(
        self, rows, rank: int, phase: str = "gather", out: np.ndarray | None = None
    ) -> np.ndarray:
        """Gather ``rows`` into ``rank``'s memory in one kernel.

        The underlying NVLink/NVSwitch handles all communication without
        software involvement (paper Fig. 4, right).  Returns the gathered
        ``(len(rows), num_cols)`` array.
        """
        self._require_data()
        rows = self._check_rows(rows)
        owners, local_rows = self._owners_and_local(rows)
        if out is None:
            out = np.empty((rows.size, self.num_cols), dtype=self.dtype)
        for r in range(self.node.num_gpus):
            mask = owners == r
            if np.any(mask):
                out[mask] = self._parts[r][local_rows[mask]]

        total_bytes = rows.size * self.row_bytes
        remote = float(np.count_nonzero(owners != rank)) / max(rows.size, 1)
        remote_bytes = int(round(total_bytes * remote))
        t = costmodel.gather_time(
            total_bytes,
            self.row_bytes,
            self.node.num_gpus,
            remote_fraction=remote,
        )
        clock = self.node.gpu_clock[rank]
        injector = self.node.fault_injector
        if injector is not None:
            # degraded fabric slows only the NVLink-crossing share; lost
            # replies cost timeout+backoff stalls before the re-issue lands
            t = injector.scale_gather_time(
                t, remote, clock.now, self.node.node_id
            )
            injector.charge_gather_retries(
                clock, phase="gather_retry", node_id=self.node.node_id
            )
        clock.advance(
            t, phase=phase, category="gather",
            args={"rows": int(rows.size), "bytes": int(total_bytes),
                  "remote_bytes": remote_bytes, "tensor": self.tag},
        )
        self.stats["gather_calls"] += 1
        self.stats["gather_rows"] += int(rows.size)
        self.stats["gather_bytes"] += int(total_bytes)
        self.stats["gather_remote_bytes"] += remote_bytes
        self.stats["gather_time"] += t

        reg = metrics.get_registry()
        now = clock.now
        reg.counter("gather_requests_total", tensor=self.tag).inc(1)
        reg.counter("gather_rows_total", tensor=self.tag).inc(rows.size)
        reg.counter("gather_link_bytes_total", link="nvlink").inc(
            remote_bytes, t=now
        )
        reg.counter("gather_link_bytes_total", link="hbm").inc(
            total_bytes - remote_bytes, t=now
        )
        reg.counter("gather_seconds_total", tensor=self.tag).inc(t)
        reg.histogram("gather_rows_per_call", tensor=self.tag).observe(
            rows.size
        )
        return out

    def gather_no_cost(self, rows) -> np.ndarray:
        """Functional gather without clock charging (evaluation paths)."""
        self._require_data()
        rows = self._check_rows(rows)
        owners, local_rows = self._owners_and_local(rows)
        out = np.empty((rows.size, self.num_cols), dtype=self.dtype)
        for r in range(self.node.num_gpus):
            mask = owners == r
            if np.any(mask):
                out[mask] = self._parts[r][local_rows[mask]]
        return out

    def scatter_no_cost(self, rows, values: np.ndarray) -> None:
        """Functional scatter without clock charging (restore/update paths)."""
        self._require_data()
        rows = self._check_rows(rows)
        values = np.asarray(values, dtype=self.dtype).reshape(
            rows.size, self.num_cols
        )
        owners, local_rows = self._owners_and_local(rows)
        for r in range(self.node.num_gpus):
            mask = owners == r
            if np.any(mask):
                self._parts[r][local_rows[mask]] = values[mask]

    def scatter(
        self, rows, values: np.ndarray, rank: int, phase: str = "scatter"
    ) -> None:
        """Write ``values`` to ``rows`` from ``rank`` (single store kernel)."""
        self._require_data()
        rows = self._check_rows(rows)
        values = np.asarray(values, dtype=self.dtype).reshape(
            rows.size, self.num_cols
        )
        owners, local_rows = self._owners_and_local(rows)
        for r in range(self.node.num_gpus):
            mask = owners == r
            if np.any(mask):
                self._parts[r][local_rows[mask]] = values[mask]
        remote = float(np.count_nonzero(owners != rank)) / max(rows.size, 1)
        total_bytes = rows.size * self.row_bytes
        t = costmodel.gather_time(
            total_bytes,
            self.row_bytes,
            self.node.num_gpus,
            remote_fraction=remote,
        )
        self.node.gpu_clock[rank].advance(
            t, phase=phase, category="gather",
            args={"rows": int(rows.size), "bytes": int(total_bytes),
                  "remote_bytes": int(round(total_bytes * remote)),
                  "tensor": self.tag},
        )

    # -- lifecycle -------------------------------------------------------------

    def free(self) -> None:
        """Release device memory."""
        if self.materialized:
            self.memory.free()
            self._parts = None
        else:
            for rank, alloc in enumerate(self._allocations):
                self.node.gpu_memory[rank].free(alloc)
            self._allocations = []
