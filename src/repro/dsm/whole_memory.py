"""WholeMemory: a logically-shared allocation partitioned across GPUs.

Reproduces the setup protocol of paper §III-B exactly:

1. every rank allocates its partition in its own device memory
   (``cudaMalloc``) and exports it (``cudaIpcGetMemHandle``);
2. an *AllGather* exchanges the IPC handles among all ranks;
3. every rank opens every peer handle (``cudaIpcOpenMemHandle``) and fills
   its :class:`~repro.dsm.pointer_table.MemoryPointerTable`.

The setup is charged "tens to one or two hundred milliseconds" depending on
size (paper §III-B); steady-state access afterwards is pure hardware P2P.
"""

from __future__ import annotations

import numpy as np

from repro.hardware import costmodel
from repro.hardware.machine import SimNode
from repro.dsm.ipc import (
    ipc_close_mem_handle,
    ipc_get_mem_handle,
    ipc_open_mem_handle,
)
from repro.dsm.pointer_table import MemoryPointerTable


def split_evenly(total: int, parts: int) -> list[int]:
    """Split ``total`` into ``parts`` sizes differing by at most one."""
    base, rem = divmod(int(total), parts)
    return [base + (1 if r < rem else 0) for r in range(parts)]


class WholeMemory:
    """One shared allocation spanning all GPUs of a :class:`SimNode`."""

    def __init__(
        self,
        node: SimNode,
        partition_bytes,
        tag: str = "wholememory",
        charge_setup: bool = True,
    ):
        """Allocate and wire up the shared memory.

        Parameters
        ----------
        node:
            The machine to allocate on.
        partition_bytes:
            Either a total byte count (split evenly across GPUs) or an
            explicit per-rank list of partition sizes.
        tag:
            Accounting tag for :meth:`DeviceMemory.usage_by_tag` (Table IV).
        charge_setup:
            Charge the one-time IPC/exchange cost to the device clocks.
        """
        self.node = node
        self.tag = tag
        num_ranks = node.num_gpus
        if isinstance(partition_bytes, (int, np.integer)):
            sizes = split_evenly(int(partition_bytes), num_ranks)
        else:
            sizes = [int(s) for s in partition_bytes]
            if len(sizes) != num_ranks:
                raise ValueError(
                    f"need {num_ranks} partition sizes, got {len(sizes)}"
                )
        self.partition_sizes = sizes
        self.total_bytes = sum(sizes)

        # Step 1: per-rank cudaMalloc + IPC export.
        self._allocations = []
        self.buffers: list[np.ndarray] = []
        handles = []
        for rank in range(num_ranks):
            self._allocations.append(
                node.gpu_memory[rank].allocate(sizes[rank], tag=tag)
            )
            buf = np.zeros(sizes[rank], dtype=np.uint8)
            self.buffers.append(buf)
            handles.append(ipc_get_mem_handle(rank, buf))
        self._handles = handles

        # Step 2: AllGather of handles — after this every rank holds the
        # full handle list (simulated synchronously).
        gathered = [list(handles) for _ in range(num_ranks)]

        # Step 3: open peer handles into per-device pointer tables.
        self.pointer_tables: list[MemoryPointerTable] = []
        for rank in range(num_ranks):
            table = MemoryPointerTable(rank, num_ranks)
            for peer, handle in enumerate(gathered[rank]):
                if peer == rank:
                    table.set_pointer(rank, self.buffers[rank])
                else:
                    table.set_pointer(peer, ipc_open_mem_handle(handle, rank))
            assert table.complete
            self.pointer_tables.append(table)

        self.setup_time = costmodel.dsm_setup_time(self.total_bytes)
        if charge_setup:
            for clock in node.gpu_clock:
                clock.advance(self.setup_time, phase="dsm_setup")
            node.sync()
        self._freed = False

    # -- address arithmetic -------------------------------------------------

    @property
    def partition_offsets(self) -> np.ndarray:
        """Global byte offset at which each rank's partition starts."""
        return np.concatenate(
            ([0], np.cumsum(self.partition_sizes)[:-1])
        ).astype(np.int64)

    def rank_of_offset(self, offsets) -> np.ndarray:
        """Owning rank of each global byte offset."""
        bounds = np.cumsum(self.partition_sizes)
        return np.searchsorted(bounds, np.asarray(offsets), side="right")

    # -- lifecycle -----------------------------------------------------------

    def free(self) -> None:
        """Release device memory and invalidate exported handles."""
        if self._freed:
            raise RuntimeError("WholeMemory already freed")
        for rank, alloc in enumerate(self._allocations):
            self.node.gpu_memory[rank].free(alloc)
            ipc_close_mem_handle(self._handles[rank])
        self.buffers = []
        self._freed = True
