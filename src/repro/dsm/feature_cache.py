"""Per-rank hot-row HBM cache over a :class:`WholeTensor` gather path.

Neighbor sampling produces a heavily skewed access pattern: high-degree nodes
land in almost every mini-batch's input frontier, so their feature rows are
re-gathered over NVLink again and again.  PyTorch-Direct and Quiver exploit
exactly this by pinning the hottest rows in the local GPU's HBM; this module
reproduces that optimisation on top of the distributed shared memory.

Each rank owns an independent cache of ``capacity_rows`` feature rows:

- **static policy** — the cache is filled once with the globally hottest rows
  (degree order, the classic degree-based static placement) and never changes;
- **clock policy** — a CLOCK (second-chance) approximation of LRU: hits set a
  reference bit, misses are inserted, eviction sweeps the clock hand past
  referenced slots.

Both behaviours are *functional* (real NumPy rows are copied into and served
from per-rank cache arrays, so cached gathers are bit-identical to uncached
ones) and *performance-modelled* (cache capacity is allocated against the
rank's :class:`~repro.hardware.memory.DeviceMemory`, hits ride the local HBM
random-read curve instead of the Fig. 8 NVLink curve via
:func:`repro.hardware.costmodel.cached_gather_time`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dsm.whole_tensor import WholeTensor
from repro.hardware import costmodel
from repro.telemetry import metrics

#: eviction/placement policies the cache understands
CACHE_POLICIES = ("static", "clock")


@dataclass
class _RankCache:
    """The per-rank cache arrays and CLOCK state."""

    #: cache slot of each global row (-1 = not cached)
    slot_of: np.ndarray
    #: the cached rows themselves, one row per slot
    data: np.ndarray
    #: global row held by each slot (-1 = empty)
    row_of: np.ndarray
    #: CLOCK reference bits
    ref: np.ndarray
    hand: int = 0
    filled: int = 0
    stats: dict = field(default_factory=dict)


def _new_stats() -> dict:
    return {
        "gather_calls": 0,
        "hits": 0,
        "misses": 0,
        "hit_bytes": 0,
        "miss_bytes": 0,
        #: remote-owned rows served from the cache — the NVLink traffic the
        #: cache actually eliminated
        "remote_bytes_saved": 0,
        "gather_time": 0.0,
    }


class FeatureCache:
    """A per-rank hot-row cache layered over ``WholeTensor.gather``."""

    def __init__(
        self,
        tensor: WholeTensor,
        capacity_rows: int,
        policy: str = "static",
        hot_rows: np.ndarray | None = None,
        tag: str = "feature_cache",
        charge_fill: bool = True,
    ):
        """``capacity_rows`` is the per-rank capacity.  The static policy
        requires ``hot_rows`` (global row IDs, hottest first); the clock
        policy starts empty and learns the hot set online."""
        if policy not in CACHE_POLICIES:
            raise ValueError(f"policy must be one of {CACHE_POLICIES}")
        tensor._require_data()
        self.tensor = tensor
        self.node = tensor.node
        self.policy = policy
        self.capacity_rows = int(min(max(capacity_rows, 0), tensor.num_rows))
        self.row_bytes = tensor.row_bytes

        # capacity accounting: every rank reserves the full cache footprint
        # against its device memory, like any other allocation
        self._allocations = [
            self.node.gpu_memory[r].allocate(
                self.capacity_rows * self.row_bytes, tag=tag
            )
            for r in range(self.node.num_gpus)
        ]
        cap = self.capacity_rows
        self._ranks = [
            _RankCache(
                slot_of=np.full(tensor.num_rows, -1, dtype=np.int64),
                data=np.empty((cap, tensor.num_cols), dtype=tensor.dtype),
                row_of=np.full(cap, -1, dtype=np.int64),
                ref=np.zeros(cap, dtype=bool),
                stats=_new_stats(),
            )
            for _ in range(self.node.num_gpus)
        ]

        if policy == "static":
            if hot_rows is None:
                raise ValueError("the static policy needs a hot_rows ranking")
            self._prefill(np.asarray(hot_rows, dtype=np.int64), charge_fill)

    @classmethod
    def from_ratio(
        cls,
        tensor: WholeTensor,
        cache_ratio: float,
        policy: str = "static",
        degrees: np.ndarray | None = None,
        **kwargs,
    ) -> "FeatureCache":
        """Size the cache as a fraction of the tensor's rows.

        For the static policy, ``degrees`` ranks the rows (hottest = highest
        degree, the access-frequency proxy neighbor sampling induces).
        """
        if not 0.0 <= cache_ratio <= 1.0:
            raise ValueError("cache_ratio must be within [0, 1]")
        capacity = int(round(cache_ratio * tensor.num_rows))
        hot_rows = None
        if policy == "static":
            if degrees is None:
                raise ValueError("static policy needs per-row degrees")
            degrees = np.asarray(degrees)
            if degrees.shape[0] != tensor.num_rows:
                raise ValueError("need one degree per tensor row")
            hot_rows = np.argsort(-degrees, kind="stable")[:capacity]
        return cls(tensor, capacity, policy=policy, hot_rows=hot_rows, **kwargs)

    # -- setup -----------------------------------------------------------------

    def _fill_time(self, rows: np.ndarray) -> float:
        """Per-rank prefill cost: one bulk gather over the fabric plus the
        HBM write-back.  Overridden by the tiered cache, whose fills pull
        rows up from the host/disk tier instead of over NVLink."""
        n = rows.size
        return costmodel.gather_time(
            n * self.row_bytes, self.row_bytes, self.node.num_gpus
        ) + costmodel.elementwise_time(n * self.row_bytes)

    def _prefill(self, hot_rows: np.ndarray, charge_fill: bool) -> None:
        """Fill every rank's cache with the hottest rows (static policy)."""
        rows = hot_rows[: self.capacity_rows]
        if rows.size == 0:
            return
        data = self.tensor.gather_no_cost(rows)
        for rank, st in enumerate(self._ranks):
            n = rows.size
            st.data[:n] = data
            st.row_of[:n] = rows
            st.slot_of[rows] = np.arange(n)
            st.filled = n
            if charge_fill:
                t = self._fill_time(rows)
                self.node.gpu_clock[rank].advance(t, phase="cache_fill")
        if charge_fill:
            self.node.sync()

    # -- the cached gather -----------------------------------------------------

    def gather(
        self, rows, rank: int, phase: str = "gather"
    ) -> np.ndarray:
        """Gather ``rows`` onto ``rank``, serving hot rows from local HBM.

        Bit-identical to ``tensor.gather`` — only the charged time and the
        cache state differ.
        """
        tensor = self.tensor
        rows = tensor._check_rows(rows)
        st = self._ranks[rank]
        out = np.empty((rows.size, tensor.num_cols), dtype=tensor.dtype)
        owners, local = tensor._owners_and_local(rows)

        slots = st.slot_of[rows] if rows.size else np.empty(0, dtype=np.int64)
        hit = slots >= 0
        num_hits = int(np.count_nonzero(hit))
        if num_hits:
            out[hit] = st.data[slots[hit]]
        miss = ~hit
        if num_hits < rows.size:
            for r in range(self.node.num_gpus):
                m = miss & (owners == r)
                if np.any(m):
                    out[m] = tensor._parts[r][local[m]]

        # -- cost: hits + locally-owned misses stream from HBM, remote misses
        # ride the NVLink random-read curve; both streams overlap in-kernel
        remote_miss = int(np.count_nonzero(miss & (owners != rank)))
        local_rows = rows.size - remote_miss
        t = costmodel.cached_gather_time(
            local_rows * self.row_bytes,
            remote_miss * self.row_bytes,
            self.row_bytes,
        )
        inserted = 0
        if self.policy == "clock" and self.capacity_rows > 0:
            st.ref[slots[hit]] = True
            inserted = self._insert_misses(st, rows, out, miss)
            if inserted:
                # the miss rows are already in registers after the gather;
                # pay only the HBM write into the cache array
                t += costmodel.elementwise_time(inserted * self.row_bytes)
        self.node.gpu_clock[rank].advance(
            t, phase=phase, category="gather",
            args={"rows": int(rows.size), "cache_hits": num_hits,
                  "remote_miss_rows": remote_miss,
                  "bytes": int(rows.size * self.row_bytes),
                  "remote_bytes": int(remote_miss * self.row_bytes)},
        )

        num_misses = rows.size - num_hits
        remote_saved = (
            int(np.count_nonzero(hit & (owners != rank))) * self.row_bytes
        )
        stats = st.stats
        stats["gather_calls"] += 1
        stats["hits"] += num_hits
        stats["misses"] += num_misses
        stats["hit_bytes"] += num_hits * self.row_bytes
        stats["miss_bytes"] += num_misses * self.row_bytes
        stats["remote_bytes_saved"] += remote_saved
        stats["gather_time"] += t

        reg = metrics.get_registry()
        now = self.node.gpu_clock[rank].now
        reg.counter("cache_requests_total").inc(rows.size)
        reg.counter("cache_hits_total").inc(num_hits)
        reg.counter("cache_misses_total").inc(num_misses)
        reg.counter("cache_remote_bytes_saved_total").inc(remote_saved)
        # cached gathers bypass WholeTensor.gather, so the per-link ledger
        # is fed here: remote misses ride NVLink, everything else is HBM
        reg.counter("gather_link_bytes_total", link="nvlink").inc(
            remote_miss * self.row_bytes, t=now
        )
        reg.counter("gather_link_bytes_total", link="hbm").inc(
            local_rows * self.row_bytes, t=now
        )
        total = reg.total("cache_hits_total") + reg.total("cache_misses_total")
        reg.gauge("cache_hit_rate").set(
            reg.total("cache_hits_total") / total if total else 0.0, t=now
        )
        return out

    def _insert_misses(
        self,
        st: _RankCache,
        rows: np.ndarray,
        gathered: np.ndarray,
        miss: np.ndarray,
    ) -> int:
        """CLOCK-insert each missed row (first occurrence wins)."""
        miss_pos = np.flatnonzero(miss)
        if miss_pos.size == 0:
            return 0
        uniq, first = np.unique(rows[miss_pos], return_index=True)
        order = np.argsort(first)  # preserve first-seen order
        cap = self.capacity_rows
        for row, pos in zip(uniq[order], miss_pos[first[order]]):
            if st.filled < cap:
                slot = st.filled
                st.filled += 1
            else:
                # sweep past referenced slots, clearing their second chance
                while st.ref[st.hand]:
                    st.ref[st.hand] = False
                    st.hand = (st.hand + 1) % cap
                slot = st.hand
                st.hand = (st.hand + 1) % cap
                st.slot_of[st.row_of[slot]] = -1
            st.row_of[slot] = row
            st.slot_of[row] = slot
            st.data[slot] = gathered[pos]
            st.ref[slot] = True
        return int(uniq.size)

    # -- introspection ---------------------------------------------------------

    def rank_stats(self, rank: int) -> dict:
        """Cumulative hit/miss statistics of one rank's cache."""
        return dict(self._ranks[rank].stats)

    def summary(self) -> dict:
        """Aggregate statistics over all ranks (plus the derived hit rate)."""
        total = _new_stats()
        for st in self._ranks:
            for k, v in st.stats.items():
                total[k] += v
        requests = total["hits"] + total["misses"]
        total["hit_rate"] = total["hits"] / requests if requests else 0.0
        total["capacity_rows"] = self.capacity_rows
        total["policy"] = self.policy
        return total

    @property
    def hit_rate(self) -> float:
        return self.summary()["hit_rate"]

    def cached_rows(self, rank: int) -> np.ndarray:
        """The global rows currently resident in ``rank``'s cache."""
        st = self._ranks[rank]
        return np.sort(st.row_of[: st.filled][st.row_of[: st.filled] >= 0])

    def reset_stats(self) -> None:
        for st in self._ranks:
            st.stats = _new_stats()

    def invalidate(self) -> None:
        """Drop all cached rows (required after any scatter into the tensor)."""
        for st in self._ranks:
            st.slot_of.fill(-1)
            st.row_of.fill(-1)
            st.ref.fill(False)
            st.hand = 0
            st.filled = 0

    def free(self) -> None:
        """Release the per-rank cache memory."""
        for rank, alloc in enumerate(self._allocations):
            self.node.gpu_memory[rank].free(alloc)
        self._allocations = []
