"""Out-of-core storage tier beneath the DSM: pinned host + NVMe disk.

Graphs whose features exceed aggregate HBM spill into two tiers below the
device-resident WholeMemory:

- **warm** — the hottest spilled rows live in *pinned* host DRAM and are
  read zero-copy over PCIe (the PyTorch-Direct regime: GPU threads load
  host cache lines directly, paying the 16 GB/s shared uplink instead of
  NVLink);
- **cold** — the tail lives on the node-local NVMe scratch and is staged
  disk->host (aligned-block reads into a pinned staging area) before the
  same zero-copy hop.

Placement is by hotness (degree order, the access-frequency proxy neighbor
sampling induces): with ``host_pinned_fraction=f``, the hottest ``f`` of
the rows are warm and the rest cold.  Layered on top, the *hot* tier is the
existing per-rank HBM :class:`~repro.dsm.feature_cache.FeatureCache` —
:class:`TieredFeatureCache` reprices its misses at the host/disk regime
while keeping hits on the local HBM curve, completing the
hot-HBM / warm-host / cold-disk hierarchy.

Both classes keep the repo's two coupled behaviours: gathers really move
NumPy rows (bit-identical to a device gather), and every access charges the
calling GPU's clock through the zero-copy cost regime in
:mod:`repro.hardware.costmodel`, stamping ``host_bytes``/``disk_bytes``
span args that feed the per-tier ledgers, critical-path link blame and the
``host_bw_2x`` what-if knob.
"""

from __future__ import annotations

import numpy as np

from repro import config
from repro.dsm.feature_cache import FeatureCache
from repro.hardware import costmodel
from repro.hardware.machine import SimNode
from repro.telemetry import metrics

__all__ = ["TIER_HOST", "TIER_DISK", "TieredTensor", "TieredFeatureCache"]

#: tier codes of :attr:`TieredTensor.tier_of`
TIER_HOST = 0
TIER_DISK = 1


class TieredTensor:
    """A ``(num_rows, num_cols)`` array spilled out of HBM.

    The warm fraction is pinned in host DRAM (allocated against the node's
    host memory, like :class:`~repro.dsm.host_tensor.HostPinnedTensor`);
    the cold tail lives on disk and only its staging buffer counts against
    host DRAM.  Mirrors the ``WholeTensor`` gather API so the graph store
    (and the trainer above it) can swap storage locations transparently.
    """

    def __init__(
        self,
        node: SimNode,
        num_rows: int,
        num_cols: int,
        dtype=np.float32,
        tag: str = "tiered",
        host_pinned_fraction: float | None = None,
        hotness: np.ndarray | None = None,
        pinned: bool = True,
    ):
        """``host_pinned_fraction`` defaults to
        :data:`repro.config.HOST_PINNED_FRACTION`.  ``hotness`` ranks rows
        for placement (hottest = largest value, typically node degree);
        without it, the lowest row IDs are warm.  ``pinned=False`` models
        pageable host memory (every read bounces through a driver staging
        buffer at :data:`~repro.config.HOST_PAGEABLE_BW_FACTOR` of the
        pinned rate)."""
        if host_pinned_fraction is None:
            host_pinned_fraction = config.HOST_PINNED_FRACTION
        if not 0.0 <= host_pinned_fraction <= 1.0:
            raise ValueError("host_pinned_fraction must be within [0, 1]")
        self.node = node
        self.num_rows = int(num_rows)
        self.num_cols = int(num_cols)
        self.dtype = np.dtype(dtype)
        self.row_bytes = self.num_cols * self.dtype.itemsize
        self.tag = tag
        self.pinned = bool(pinned)
        self.host_pinned_fraction = float(host_pinned_fraction)

        n_host = int(round(self.host_pinned_fraction * self.num_rows))
        n_host = min(max(n_host, 0), self.num_rows)
        self.host_rows = n_host
        self.disk_rows = self.num_rows - n_host
        if hotness is not None:
            hotness = np.asarray(hotness)
            if hotness.shape[0] != self.num_rows:
                raise ValueError("need one hotness value per row")
            order = np.argsort(-hotness, kind="stable")
        else:
            order = np.arange(self.num_rows, dtype=np.int64)
        #: tier of each row (:data:`TIER_HOST` or :data:`TIER_DISK`)
        self.tier_of = np.full(self.num_rows, TIER_DISK, dtype=np.int8)
        self.tier_of[order[:n_host]] = TIER_HOST

        # host DRAM accounting: the warm rows plus the disk staging area
        staging = config.DISK_BLOCK_BYTES * config.PREFETCH_DEPTH
        self._allocation = node.host_memory.allocate(
            n_host * self.row_bytes + staging, tag=tag
        )
        self._data = np.zeros((self.num_rows, self.num_cols), dtype=self.dtype)
        self.stats = {
            "gather_calls": 0,
            "gather_rows": 0,
            "gather_bytes": 0,
            "host_bytes": 0,
            "disk_bytes": 0,
            "staged_bytes": 0,
            "gather_time": 0.0,
        }

    # -- layout ----------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_rows, self.num_cols)

    @property
    def total_bytes(self) -> int:
        return self.num_rows * self.row_bytes

    def _require_data(self) -> None:
        """WholeTensor-API shim: tiered tensors are always materialized."""

    def _check_rows(self, rows) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.num_rows):
            raise IndexError(f"row index out of range [0, {self.num_rows})")
        return rows

    def tier_split(self, rows: np.ndarray) -> tuple[int, int]:
        """``(warm_rows, cold_rows)`` of an (already validated) row set."""
        host = int(np.count_nonzero(self.tier_of[rows] == TIER_HOST))
        return host, int(rows.size) - host

    # -- load ------------------------------------------------------------------

    def load_from_host(self, array: np.ndarray, phase: str = "load") -> float:
        """Populate from a host array (DRAM memcpy + disk write-behind —
        charged to nobody, matching ``HostPinnedTensor.load_from_host``)."""
        self._data[:] = np.asarray(array, dtype=self.dtype).reshape(
            self.num_rows, self.num_cols
        )
        return 0.0

    # -- pricing ---------------------------------------------------------------

    def fetch_time(self, rows) -> tuple[float, dict]:
        """Host-tier fetch cost of ``rows`` plus the trace span args.

        Touches no clock: :meth:`gather` charges it inline on the calling
        rank, while the streaming loader launches the same duration on the
        dedicated host stream and lets the consumer depend on its event.
        """
        rows = self._check_rows(rows)
        host_rows, disk_rows = self.tier_split(rows)
        host_bytes = host_rows * self.row_bytes
        disk_bytes = disk_rows * self.row_bytes
        t = costmodel.tiered_gather_time(
            host_bytes, disk_bytes, self.row_bytes, pinned=self.pinned
        )
        args = {
            "rows": int(rows.size),
            "bytes": int(host_bytes + disk_bytes),
            "host_bytes": int(host_bytes),
            "disk_bytes": int(disk_bytes),
            "tensor": self.tag,
        }
        return t, args

    # -- gathers ---------------------------------------------------------------

    def gather(self, rows, rank: int, phase: str = "gather") -> np.ndarray:
        """Synchronous tier gather onto GPU ``rank``.

        Warm rows arrive zero-copy over PCIe; cold rows pay the disk->host
        staging chain first.  Fault hooks mirror ``WholeTensor.gather``
        with a remote fraction of 1.0 — every byte crosses the host fabric.
        """
        rows = self._check_rows(rows)
        out = self._data[rows]
        t, args = self.fetch_time(rows)
        clock = self.node.gpu_clock[rank]
        injector = self.node.fault_injector
        if injector is not None:
            t = injector.scale_gather_time(
                t, 1.0, clock.now, self.node.node_id
            )
            injector.charge_gather_retries(
                clock, phase="gather_retry", node_id=self.node.node_id
            )
        clock.advance(t, phase=phase, category="gather", args=args)
        self._account(args, t, clock.now)
        return out

    def gather_staged(
        self, rows, rank: int, phase: str = "gather"
    ) -> np.ndarray:
        """Consume rows the streaming loader already staged into HBM.

        The host->HBM transfer was charged on the host stream; reading the
        staging buffer is a local HBM gather.
        """
        rows = self._check_rows(rows)
        out = self._data[rows]
        nbytes = int(rows.size * self.row_bytes)
        t = costmodel.cached_gather_time(nbytes, 0.0, self.row_bytes)
        clock = self.node.gpu_clock[rank]
        clock.advance(
            t, phase=phase, category="gather",
            args={"rows": int(rows.size), "bytes": nbytes, "staged": True,
                  "tensor": self.tag},
        )
        self.stats["staged_bytes"] += nbytes
        reg = metrics.get_registry()
        reg.counter("gather_requests_total", tensor=self.tag).inc(1)
        reg.counter("gather_rows_total", tensor=self.tag).inc(rows.size)
        reg.counter("gather_link_bytes_total", link="hbm").inc(
            nbytes, t=clock.now
        )
        reg.counter("gather_seconds_total", tensor=self.tag).inc(t)
        reg.histogram("gather_rows_per_call", tensor=self.tag).observe(
            rows.size
        )
        return out

    def gather_no_cost(self, rows) -> np.ndarray:
        """Functional gather without clock charging (evaluation paths)."""
        return self._data[self._check_rows(rows)]

    def _account(self, args: dict, t: float, now: float) -> None:
        st = self.stats
        st["gather_calls"] += 1
        st["gather_rows"] += args["rows"]
        st["gather_bytes"] += args["bytes"]
        st["host_bytes"] += args["host_bytes"]
        st["disk_bytes"] += args["disk_bytes"]
        st["gather_time"] += t
        reg = metrics.get_registry()
        reg.counter("gather_requests_total", tensor=self.tag).inc(1)
        reg.counter("gather_rows_total", tensor=self.tag).inc(args["rows"])
        # per-link ledger: warm bytes ride PCIe, cold bytes are attributed
        # to the disk stage (their PCIe hop is implied by the chain)
        reg.counter("gather_link_bytes_total", link="pcie").inc(
            args["host_bytes"], t=now
        )
        reg.counter("gather_link_bytes_total", link="disk").inc(
            args["disk_bytes"], t=now
        )
        reg.counter("gather_seconds_total", tensor=self.tag).inc(t)
        reg.counter("tier_gather_bytes_total", tier="host").inc(
            args["host_bytes"]
        )
        reg.counter("tier_gather_bytes_total", tier="disk").inc(
            args["disk_bytes"]
        )
        reg.histogram("gather_rows_per_call", tensor=self.tag).observe(
            args["rows"]
        )

    # -- lifecycle --------------------------------------------------------------

    def free(self) -> None:
        self.node.host_memory.free(self._allocation)
        self._data = None


class TieredFeatureCache(FeatureCache):
    """Hot-row HBM cache whose misses pay the host/disk tier.

    Reuses the base class's per-rank cache arrays, CLOCK policy and
    statistics wholesale; only the miss fill (one ``_data`` read instead of
    per-rank partition reads) and the pricing (zero-copy PCIe + disk
    staging instead of the NVLink curve) differ.  Hits stream from local
    HBM concurrently with the miss chain, so the slower side dominates —
    the same in-kernel overlap as ``cached_gather_time``.
    """

    def __init__(self, tensor: TieredTensor, capacity_rows: int, **kwargs):
        if not isinstance(tensor, TieredTensor):
            raise TypeError("TieredFeatureCache requires a TieredTensor")
        super().__init__(tensor, capacity_rows, **kwargs)

    def _fill_time(self, rows: np.ndarray) -> float:
        """Static prefill pulls the hot rows up from the host/disk tier."""
        t, _ = self.tensor.fetch_time(rows)
        return t + costmodel.elementwise_time(rows.size * self.row_bytes)

    def gather(self, rows, rank: int, phase: str = "gather") -> np.ndarray:
        tensor = self.tensor
        rows = tensor._check_rows(rows)
        st = self._ranks[rank]
        out = np.empty((rows.size, tensor.num_cols), dtype=tensor.dtype)

        slots = st.slot_of[rows] if rows.size else np.empty(0, dtype=np.int64)
        hit = slots >= 0
        num_hits = int(np.count_nonzero(hit))
        if num_hits:
            out[hit] = st.data[slots[hit]]
        miss = ~hit
        miss_rows = rows[miss]
        if miss_rows.size:
            out[miss] = tensor._data[miss_rows]

        # -- cost: hits stream from HBM, warm misses ride zero-copy PCIe,
        # cold misses chain disk staging + PCIe; all streams overlap
        # in-kernel so the slowest dominates
        host_miss, disk_miss = tensor.tier_split(miss_rows)
        rb = self.row_bytes
        host_bytes = host_miss * rb
        disk_bytes = disk_miss * rb
        hit_bytes = num_hits * rb
        bw = costmodel.zero_copy_host_bw(rb, pinned=tensor.pinned)
        t_warm = host_bytes / bw
        t_cold = 0.0
        if disk_bytes > 0:
            t_cold = (
                costmodel.disk_staging_time(disk_bytes) + disk_bytes / bw
            )
        t_local = hit_bytes / costmodel.local_random_read_bw(rb)
        t = config.KERNEL_LAUNCH_OVERHEAD + max(t_local, t_warm, t_cold)

        inserted = 0
        if self.policy == "clock" and self.capacity_rows > 0:
            st.ref[slots[hit]] = True
            inserted = self._insert_misses(st, rows, out, miss)
            if inserted:
                t += costmodel.elementwise_time(inserted * rb)
        self.node.gpu_clock[rank].advance(
            t, phase=phase, category="gather",
            args={"rows": int(rows.size), "cache_hits": num_hits,
                  "bytes": int(rows.size * rb),
                  "host_bytes": int(host_bytes),
                  "disk_bytes": int(disk_bytes),
                  "tensor": tensor.tag},
        )

        num_misses = rows.size - num_hits
        stats = st.stats
        stats["gather_calls"] += 1
        stats["hits"] += num_hits
        stats["misses"] += num_misses
        stats["hit_bytes"] += hit_bytes
        stats["miss_bytes"] += num_misses * rb
        # every hit is a PCIe/disk transfer the HBM cache eliminated
        stats["remote_bytes_saved"] += hit_bytes
        stats["gather_time"] += t

        reg = metrics.get_registry()
        now = self.node.gpu_clock[rank].now
        reg.counter("cache_requests_total").inc(rows.size)
        reg.counter("cache_hits_total").inc(num_hits)
        reg.counter("cache_misses_total").inc(num_misses)
        reg.counter("cache_remote_bytes_saved_total").inc(hit_bytes)
        reg.counter("gather_link_bytes_total", link="hbm").inc(
            hit_bytes, t=now
        )
        reg.counter("gather_link_bytes_total", link="pcie").inc(
            host_bytes, t=now
        )
        reg.counter("gather_link_bytes_total", link="disk").inc(
            disk_bytes, t=now
        )
        reg.counter("tier_gather_bytes_total", tier="host").inc(host_bytes)
        reg.counter("tier_gather_bytes_total", tier="disk").inc(disk_bytes)
        total = reg.total("cache_hits_total") + reg.total("cache_misses_total")
        reg.gauge("cache_hit_rate").set(
            reg.total("cache_hits_total") / total if total else 0.0, t=now
        )
        return out
