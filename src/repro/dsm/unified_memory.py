"""CUDA Unified Memory model — the slower alternative of paper Table I.

UM (``cudaMallocManaged``) implements cross-GPU access in software: a remote
access faults, the CPU migrates the 64 KB page to the accessing GPU and
rewrites its page table, then the access retries.  The paper's pointer-chase
measurement shows 20.8–35.8 µs per dependent access versus 1.35–1.56 µs for
GPUDirect P2P — the 15–25× gap that motivates building WholeMemory on P2P.

:class:`UnifiedMemorySpace` models the page table functionally (page
ownership moves on fault) and charges fault/hit latencies from the cost
model, so both the latency *numbers* and the migration *mechanism* are
reproduced.
"""

from __future__ import annotations

import numpy as np

from repro import config
from repro.hardware import costmodel
from repro.hardware.machine import SimNode


class UnifiedMemorySpace:
    """A managed allocation with page-granular migration between GPUs."""

    def __init__(
        self,
        node: SimNode,
        total_bytes: int,
        page_bytes: int = config.UM_PAGE_BYTES,
        tag: str = "unified",
    ):
        self.node = node
        self.total_bytes = int(total_bytes)
        self.page_bytes = int(page_bytes)
        self.num_pages = -(-self.total_bytes // self.page_bytes)
        # Initial placement mirrors the paper's experiment: each GPU
        # randomly initialises one equal-sized slice, so pages start evenly
        # distributed across GPUs.
        pages_per_rank = -(-self.num_pages // node.num_gpus)
        self.page_owner = np.minimum(
            np.arange(self.num_pages, dtype=np.int64) // pages_per_rank,
            node.num_gpus - 1,
        )
        self.fault_count = 0
        self.hit_count = 0

    def page_of(self, byte_offsets) -> np.ndarray:
        return np.asarray(byte_offsets, dtype=np.int64) // self.page_bytes

    def access(self, byte_offsets, rank: int, phase: str = "um_access") -> float:
        """Perform *dependent* accesses from ``rank``; returns time charged.

        Each access to a page not resident on ``rank`` triggers a fault:
        the CPU migrates the page (ownership flips to ``rank``) and the
        access pays the UM service latency.  Resident pages pay only the
        local HBM latency.  Accesses are dependent (a pointer chase), so
        latencies sum.
        """
        pages = self.page_of(byte_offsets)
        if pages.size and pages.max() >= self.num_pages:
            raise IndexError("access beyond the managed allocation")
        t = 0.0
        fault_lat = costmodel.um_access_latency(self.total_bytes)
        hit_lat = costmodel.local_access_latency()
        # The chase is sequential; page ownership changes as we go, so a
        # revisited page within the chain is a hit.
        for p in pages:
            if self.page_owner[p] != rank:
                self.page_owner[p] = rank
                self.fault_count += 1
                t += fault_lat
            else:
                self.hit_count += 1
                t += hit_lat
        self.node.gpu_clock[rank].advance(t, phase=phase)
        return t

    def resident_fraction(self, rank: int) -> float:
        """Fraction of pages currently resident on ``rank``."""
        return float(np.mean(self.page_owner == rank))
