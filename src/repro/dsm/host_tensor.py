"""Host-pinned tensor: the zero-copy alternative to device WholeMemory.

The open-source WholeGraph exposes a *host-pinned* memory type next to the
device-resident one: the data lives in CPU DRAM registered for GPU access,
and kernels read it directly over PCIe.  It holds graphs too big for the
aggregate GPU memory at the price of the PCIe ceiling — 16 GB/s per GPU on
the shared DGX uplink versus 300 GB/s of NVLink (paper §III-B's 18.75x).

:class:`HostPinnedTensor` mirrors the :class:`~repro.dsm.whole_tensor.
WholeTensor` gather API so the graph store (and therefore the trainer) can
swap storage locations transparently; the storage-location ablation builds
on exactly that swap.
"""

from __future__ import annotations

import numpy as np

from repro.hardware import costmodel
from repro.hardware.machine import SimNode


class HostPinnedTensor:
    """A ``(num_rows, num_cols)`` array pinned in host DRAM."""

    def __init__(
        self,
        node: SimNode,
        num_rows: int,
        num_cols: int,
        dtype=np.float32,
        tag: str = "host_pinned",
    ):
        self.node = node
        self.num_rows = int(num_rows)
        self.num_cols = int(num_cols)
        self.dtype = np.dtype(dtype)
        self.row_bytes = self.num_cols * self.dtype.itemsize
        self._allocation = node.host_memory.allocate(
            self.num_rows * self.row_bytes, tag=tag
        )
        self._data = np.zeros((self.num_rows, self.num_cols), dtype=self.dtype)
        self.stats = {
            "gather_calls": 0,
            "gather_rows": 0,
            "gather_bytes": 0,
            "gather_time": 0.0,
        }

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_rows, self.num_cols)

    @property
    def total_bytes(self) -> int:
        return self.num_rows * self.row_bytes

    def load_from_host(self, array: np.ndarray, phase: str = "load") -> float:
        """Populate from a host array (a memcpy within DRAM — no PCIe)."""
        self._data[:] = np.asarray(array, dtype=self.dtype).reshape(
            self.num_rows, self.num_cols
        )
        return 0.0

    def _check_rows(self, rows) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.num_rows):
            raise IndexError(f"row index out of range [0, {self.num_rows})")
        return rows

    def gather(self, rows, rank: int, phase: str = "gather") -> np.ndarray:
        """Zero-copy gather over PCIe onto GPU ``rank``."""
        rows = self._check_rows(rows)
        out = self._data[rows]
        t = costmodel.host_pinned_gather_time(
            rows.size * self.row_bytes, self.row_bytes
        )
        self.node.gpu_clock[rank].advance(t, phase=phase)
        self.stats["gather_calls"] += 1
        self.stats["gather_rows"] += int(rows.size)
        self.stats["gather_bytes"] += int(rows.size * self.row_bytes)
        self.stats["gather_time"] += t
        return out

    def gather_no_cost(self, rows) -> np.ndarray:
        """Functional gather without clock charging."""
        return self._data[self._check_rows(rows)]

    def free(self) -> None:
        self.node.host_memory.free(self._allocation)
        self._data = None
