"""CUDA IPC handle simulation.

Models ``cudaIpcGetMemHandle`` / ``cudaIpcOpenMemHandle``: a handle is an
opaque token a process can hand to another process, which the peer converts
into a locally-usable device pointer.  Here the "device pointer" is the
backing NumPy buffer of the exporting rank's partition; *opening* a handle
checks the protocol invariants the real API enforces (a process must not open
its own handle; a handle must refer to a live allocation).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

_registry: dict[int, np.ndarray] = {}
_token_counter = itertools.count(1)


@dataclass(frozen=True)
class IpcHandle:
    """Opaque exportable reference to one rank's device allocation."""

    token: int
    owner_rank: int
    nbytes: int


def ipc_get_mem_handle(owner_rank: int, buffer: np.ndarray) -> IpcHandle:
    """Export a device buffer as an IPC handle (``cudaIpcGetMemHandle``)."""
    token = next(_token_counter)
    _registry[token] = buffer
    return IpcHandle(token=token, owner_rank=owner_rank, nbytes=buffer.nbytes)


def ipc_open_mem_handle(handle: IpcHandle, opener_rank: int) -> np.ndarray:
    """Open a peer's IPC handle, returning the mapped "device pointer".

    Mirrors the CUDA restriction that ``cudaIpcOpenMemHandle`` may not be
    called on a handle created by the same process/device.
    """
    if handle.owner_rank == opener_rank:
        raise ValueError(
            "cudaIpcOpenMemHandle cannot open a handle exported by the "
            f"opening process itself (rank {opener_rank})"
        )
    try:
        return _registry[handle.token]
    except KeyError:
        raise KeyError(f"IPC handle {handle.token} refers to a freed allocation")


def ipc_close_mem_handle(handle: IpcHandle) -> None:
    """Invalidate an exported handle (allocation freed)."""
    _registry.pop(handle.token, None)
