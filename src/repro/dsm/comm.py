"""NCCL-style communicator over the *distributed-memory* view of the GPUs.

WholeGraph's point is that GPUs can be used as a distributed shared memory
instead of a distributed memory system.  This module implements the
distributed-memory side of that comparison: explicit ``send``/``recv``,
``allgather``, ``alltoallv`` and ``allreduce`` with software-managed
buffers — the machinery the NCCL-based gather of Fig. 4 (left) needs.

Collectives are synchronising: all ranks enter, each is charged its own
traffic time over its NVLink trunk, then all ranks wait for the slowest.
"""

from __future__ import annotations

import numpy as np

from repro import config
from repro.hardware import costmodel
from repro.hardware.machine import SimNode


class Communicator:
    """Collective communication over the GPUs of one node."""

    def __init__(self, node: SimNode, bandwidth: float | None = None,
                 latency: float | None = None):
        self.node = node
        self.num_ranks = node.num_gpus
        # NCCL sustains ~80% of the NVLink line rate on alltoall traffic
        self.bandwidth = (
            bandwidth
            if bandwidth is not None
            else node.spec.nvlink.bandwidth * config.NCCL_BW_EFFICIENCY
        )
        self.latency = (
            latency if latency is not None else node.spec.nvlink.latency
        )

    def _effective_bandwidth(self, t: float) -> float:
        """Bandwidth at simulated time ``t``, after any injected fabric
        degradation (:mod:`repro.faults`).  Healthy nodes skip the lookup."""
        injector = self.node.fault_injector
        if injector is None:
            return self.bandwidth
        return self.bandwidth / injector.link_slowdown(t, self.node.node_id)

    # -- point to point --------------------------------------------------------

    def send_recv(self, data: np.ndarray, src: int, dst: int,
                  phase: str = "comm") -> np.ndarray:
        """Explicit send from ``src`` to ``dst``; both ranks are charged."""
        data = np.asarray(data)
        start = max(self.node.gpu_clock[src].now, self.node.gpu_clock[dst].now)
        t = costmodel.stream_transfer_time(
            data.nbytes, self._effective_bandwidth(start), self.latency
        )
        self.node.gpu_clock[src].wait_until(start)
        self.node.gpu_clock[dst].wait_until(start)
        args = {"nbytes": int(data.nbytes), "src": src, "dst": dst}
        self.node.gpu_clock[src].advance(
            t, phase=phase, category="comm", args=args
        )
        self.node.gpu_clock[dst].advance(
            t, phase=phase, category="comm", args=args
        )
        return data.copy()

    # -- collectives ------------------------------------------------------------

    def _enter(self, phase: str = "wait") -> None:
        self.node.sync(phase=phase)

    def allgather(self, per_rank_objects: list, phase: str = "comm",
                  nbytes_each: float = 64.0) -> list[list]:
        """Every rank receives every rank's object.

        Used for small metadata (IPC handles, counts); ``nbytes_each`` sets
        the per-object wire size for costing.
        """
        self._check_ranks(per_rank_objects)
        self._enter()
        bw = self._effective_bandwidth(self.node.gpu_clock[0].now)
        t = (
            (self.num_ranks - 1) * self.latency
            + (self.num_ranks - 1) * nbytes_each / bw
        )
        for clock in self.node.gpu_clock:
            clock.advance(
                t, phase=phase, category="comm",
                args={"nbytes": int((self.num_ranks - 1) * nbytes_each)},
            )
        return [list(per_rank_objects) for _ in range(self.num_ranks)]

    def alltoallv(
        self, send: list[list[np.ndarray]], phase: str = "comm"
    ) -> list[list[np.ndarray]]:
        """Variable all-to-all: ``send[src][dst]`` -> ``recv[dst][src]``.

        Each rank's time is its max of outgoing and incoming bytes over its
        (full-duplex) NVLink trunk, plus per-peer message latency.
        """
        self._check_ranks(send)
        for row in send:
            self._check_ranks(row)
        self._enter()
        out_bytes = [sum(b.nbytes for b in row) for row in send]
        in_bytes = [
            sum(send[src][dst].nbytes for src in range(self.num_ranks))
            for dst in range(self.num_ranks)
        ]
        recv = [
            [np.asarray(send[src][dst]).copy() for src in range(self.num_ranks)]
            for dst in range(self.num_ranks)
        ]
        bw = self._effective_bandwidth(self.node.gpu_clock[0].now)
        for rank in range(self.num_ranks):
            traffic = max(out_bytes[rank], in_bytes[rank])
            t = (self.num_ranks - 1) * self.latency + traffic / bw
            self.node.gpu_clock[rank].advance(
                t, phase=phase, category="comm",
                args={"nbytes": int(traffic),
                      "out_bytes": int(out_bytes[rank]),
                      "in_bytes": int(in_bytes[rank])},
            )
        self.node.sync()
        return recv

    def ring_time(self, nbytes: float, at: float | None = None) -> float:
        """Chunked-ring all-reduce duration for one payload of ``nbytes``.

        ``at`` prices the ring at a given simulated time (injected fabric
        degradation is time-windowed); default is spec bandwidth.
        """
        bw = self.bandwidth if at is None else self._effective_bandwidth(at)
        return costmodel.chunked_ring_allreduce_time(
            nbytes, self.num_ranks, bw, self.latency
        )

    def allreduce(
        self, per_rank_arrays: list[np.ndarray], phase: str = "allreduce"
    ) -> list[np.ndarray]:
        """Ring all-reduce (sum); every rank receives the full sum.

        Proper collective barrier semantics: skewed ranks first align to the
        max clock (recorded as the distinct ``allreduce_wait`` stall phase),
        then all pay the chunked-ring transfer time together.
        """
        self._check_ranks(per_rank_arrays)
        self._enter(phase="allreduce_wait")
        total = per_rank_arrays[0].astype(np.float64)
        for a in per_rank_arrays[1:]:
            total = total + a
        result = total.astype(per_rank_arrays[0].dtype)
        t = self.ring_time(result.nbytes, at=self.node.gpu_clock[0].now)
        for clock in self.node.gpu_clock:
            clock.advance(t, phase=phase, category="comm",
                          args={"nbytes": int(result.nbytes)})
        return [result.copy() for _ in range(self.num_ranks)]

    def broadcast(self, data: np.ndarray, root: int,
                  phase: str = "comm") -> list[np.ndarray]:
        """Broadcast from ``root`` to all ranks (tree cost)."""
        data = np.asarray(data)
        self._enter()
        steps = max(1, int(np.ceil(np.log2(max(self.num_ranks, 2)))))
        t = steps * costmodel.stream_transfer_time(
            data.nbytes,
            self._effective_bandwidth(self.node.gpu_clock[0].now),
            self.latency,
        )
        for clock in self.node.gpu_clock:
            clock.advance(
                t, phase=phase, category="comm",
                args={"nbytes": int(data.nbytes), "root": root},
            )
        return [data.copy() for _ in range(self.num_ranks)]

    def _check_ranks(self, seq) -> None:
        if len(seq) != self.num_ranks:
            raise ValueError(
                f"expected one entry per rank ({self.num_ranks}), got {len(seq)}"
            )
