"""The per-device memory pointer table.

Paper §III-B / Fig. 3: after the IPC exchange, each GPU holds an array of
mapped pointers — one per peer GPU — so a CUDA kernel can compute
``ptr_table[rank][local_offset]`` for any global address.  On an 8-GPU
DGX-A100 the table is 8 pointers = 64 bytes per allocation, so it costs
nothing and does not hurt scalability.
"""

from __future__ import annotations

import numpy as np


class MemoryPointerTable:
    """One device's view of all partitions of a shared allocation."""

    POINTER_BYTES = 8

    def __init__(self, device_rank: int, num_ranks: int):
        self.device_rank = device_rank
        self.num_ranks = num_ranks
        self._pointers: list[np.ndarray | None] = [None] * num_ranks

    def set_pointer(self, rank: int, buffer: np.ndarray) -> None:
        """Install the mapped pointer for ``rank``'s partition."""
        self._pointers[rank] = buffer

    def pointer(self, rank: int) -> np.ndarray:
        """Dereference the table entry for ``rank``."""
        buf = self._pointers[rank]
        if buf is None:
            raise RuntimeError(
                f"pointer table of device {self.device_rank} has no mapping "
                f"for rank {rank} (IPC exchange incomplete?)"
            )
        return buf

    @property
    def complete(self) -> bool:
        """True once every peer's pointer has been installed."""
        return all(p is not None for p in self._pointers)

    @property
    def nbytes(self) -> int:
        """On-device footprint of the table itself (64 B on 8 GPUs)."""
        return self.num_ranks * self.POINTER_BYTES
