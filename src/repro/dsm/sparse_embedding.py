"""WholeEmbedding: a trainable embedding table in distributed shared memory.

WholeGraph's headline use case beyond feature storage is *trainable* node
embeddings that are too large to replicate per GPU (the "millions of users"
recommendation scenario): the table lives in WholeMemory, sharded row-wise
exactly like features, and every training step only touches the rows the
mini-batch referenced.

Three coupled pieces:

- **forward** — :meth:`WholeEmbedding.forward` gathers the requested rows
  through :meth:`~repro.dsm.whole_tensor.WholeTensor.gather`, so the access
  is priced on the Fig. 8 gather bandwidth curve, flows through the fault
  injector (gather retries / link degradation hit embedding rows the same
  way they hit features), and returns an autograd :class:`Tensor` whose
  pullback records the incoming row gradients;
- **backward** — row gradients accumulate in a pending list (duplicated
  rows and multiple forwards per step are allowed);
  :func:`dedup_row_grads` scatter-adds them into one gradient per unique
  row, bit-identically to summing each row's contributions in occurrence
  order;
- **update push** — :meth:`push_row_grads` charges the cost of shipping the
  deduplicated row gradients to their owner shards: hash-table dedup
  (AppendUnique regime), scatter-add with atomic-collision pricing, and the
  NVLink share of the row payload, committed as a span on the comm-stream
  lane so the Chrome trace shows sparse row-grad traffic next to the dense
  all-reduce buckets.

The table is *not* a :class:`~repro.nn.module.Parameter` and never appears
in ``Module.parameters()``: the dense grad-sync overlap engine (bucketed
all-reduce over replicated parameters) skips it by construction, and the
sparse rows ride the comm stream through this module instead.
"""

from __future__ import annotations

import numpy as np

from repro.dsm.whole_tensor import WholeTensor
from repro.hardware import costmodel
from repro.hardware.machine import SimNode
from repro.nn.tensor import Tensor
from repro.telemetry import metrics


def dedup_row_grads(
    rows: np.ndarray, grads: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Scatter-add duplicated row gradients into one gradient per row.

    Returns ``(unique_rows, summed_grads, counts)`` where ``summed_grads[i]``
    is the float32 sum of every ``grads[j]`` with ``rows[j] ==
    unique_rows[i]``, accumulated in occurrence order — bit-identical to
    summing each row's contributions sequentially (``np.add.at`` is the
    unbuffered in-order scatter-add).
    """
    rows = np.asarray(rows, dtype=np.int64)
    grads = np.asarray(grads, dtype=np.float32)
    uniq, inverse, counts = np.unique(
        rows, return_inverse=True, return_counts=True
    )
    summed = np.zeros((uniq.size, grads.shape[1]), dtype=np.float32)
    np.add.at(summed, inverse, grads)
    return uniq, summed, counts


class WholeEmbedding:
    """A trainable ``(num_rows, dim)`` float32 table sharded across GPUs."""

    def __init__(
        self,
        node: SimNode,
        num_rows: int,
        dim: int,
        rng: np.random.Generator | None = None,
        init_scale: float | None = None,
        tag: str = "embedding",
        partition: str = "cyclic",
        charge_setup: bool = True,
    ):
        """``partition`` defaults to ``"cyclic"`` (``owner = row % N``): user
        and item IDs arrive in arbitrary hot/cold mixes, so round-robin is
        the balanced layout.  ``rng`` given: the table is initialised with
        ``N(0, init_scale)`` rows (default scale ``1/sqrt(dim)``) and the
        host->device load is charged on the PCIe streams like a feature
        load."""
        self.table = WholeTensor(
            node, num_rows, dim, dtype=np.float32, tag=tag,
            charge_setup=charge_setup, partition=partition,
        )
        #: raw (rows, grad) pairs recorded by forward pullbacks since the
        #: last optimizer step
        self._pending: list[tuple[np.ndarray, np.ndarray]] = []
        #: cumulative update-path statistics (read by telemetry/reports)
        self.grad_stats = {
            "steps": 0,
            "raw_rows": 0,
            "rows_touched": 0,
            "grad_bytes": 0,
            "remote_grad_bytes": 0,
            "grad_time": 0.0,
        }
        if rng is not None:
            scale = (
                float(init_scale) if init_scale is not None
                else 1.0 / float(np.sqrt(dim))
            )
            init = (
                rng.standard_normal((num_rows, dim)) * scale
            ).astype(np.float32)
            self.table.load_from_host(init, phase="embed_load")

    # -- layout ---------------------------------------------------------------

    @property
    def node(self) -> SimNode:
        return self.table.node

    @property
    def num_rows(self) -> int:
        return self.table.num_rows

    @property
    def dim(self) -> int:
        return self.table.num_cols

    @property
    def tag(self) -> str:
        return self.table.tag

    @property
    def row_bytes(self) -> int:
        return self.table.row_bytes

    @property
    def total_bytes(self) -> int:
        return self.table.total_bytes

    def rank_of_row(self, rows) -> np.ndarray:
        """Owning rank of each (global) row index."""
        return self.table.rank_of_row(rows)

    # -- forward gather -------------------------------------------------------

    def gather(
        self, rows, rank: int, phase: str = "embed_gather"
    ) -> np.ndarray:
        """Costed row gather (delegates to the WholeTensor gather kernel).

        On top of the generic gather metrics, the per-link *embedding* byte
        counters split this table's traffic out of the shared
        ``gather_link_bytes_total`` ledger.
        """
        stats = self.table.stats
        bytes0 = stats["gather_bytes"]
        remote0 = stats["gather_remote_bytes"]
        out = self.table.gather(rows, rank, phase=phase)
        moved = stats["gather_bytes"] - bytes0
        remote = stats["gather_remote_bytes"] - remote0
        reg = metrics.get_registry()
        now = self.node.gpu_clock[rank].now
        reg.counter(
            "embedding_link_bytes_total", tensor=self.tag, link="nvlink"
        ).inc(remote, t=now)
        reg.counter(
            "embedding_link_bytes_total", tensor=self.tag, link="hbm"
        ).inc(moved - remote, t=now)
        return out

    def gather_no_cost(self, rows) -> np.ndarray:
        """Functional row gather without clock charging (eval/serve-index)."""
        return self.table.gather_no_cost(rows)

    def forward(
        self, rows, rank: int = 0, phase: str = "embed_gather",
        charge: bool = True,
    ) -> Tensor:
        """Gather ``rows`` as an autograd tensor.

        The returned tensor is a tape *leaf with a pullback*: backward
        appends ``(rows, grad)`` to the pending row-gradient list that the
        sparse optimizer drains on its next step.  Duplicate rows in one
        call and multiple forwards per step both accumulate correctly
        (deduplication happens at step time).
        """
        rows = np.asarray(rows, dtype=np.int64).copy()
        data = (
            self.gather(rows, rank, phase=phase)
            if charge else self.gather_no_cost(rows)
        )

        def pullback(grad):
            self._pending.append(
                (rows, np.asarray(grad, dtype=np.float32).copy())
            )
            return ()

        out = Tensor(data)
        out.requires_grad = True
        out._backward = pullback
        return out

    # -- backward row gradients ----------------------------------------------

    @property
    def has_pending_grads(self) -> bool:
        return bool(self._pending)

    def zero_grad(self) -> None:
        """Drop any recorded row gradients without applying them."""
        self._pending = []

    def collect_row_grads(
        self,
    ) -> tuple[np.ndarray, np.ndarray, int, int]:
        """Drain pending grads into ``(rows, grads, raw_rows, atomic_rows)``.

        ``rows`` are unique and sorted; ``grads`` is the occurrence-order
        float32 scatter-add of every contribution (:func:`dedup_row_grads`).
        ``raw_rows`` counts the pre-dedup contributions (the hash-table op
        count) and ``atomic_rows`` the contributions that collided with a
        duplicate (the share paying the atomic-add penalty).
        """
        if not self._pending:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty((0, self.dim), dtype=np.float32), 0, 0
        rows = np.concatenate([r for r, _ in self._pending])
        grads = np.concatenate([g for _, g in self._pending])
        self._pending = []
        uniq, summed, counts = dedup_row_grads(rows, grads)
        atomic_rows = int(counts[counts > 1].sum())
        return uniq, summed, int(rows.size), atomic_rows

    def push_row_grads(
        self,
        rows: np.ndarray,
        grads: np.ndarray,
        raw_rows: int,
        atomic_rows: int,
        rank: int = 0,
        phase: str = "embed_grad",
    ) -> float:
        """Charge the row-gradient push to the owner shards.

        Prices dedup (hash-table regime), the scatter-add (atomic collisions
        at the duplicated share), and the cross-GPU row payload on the
        gather bandwidth curve; the whole push is committed as one span on
        the node's comm-stream lane with the rows/bytes split in its args,
        mirroring the dense ``allreduce_bucket`` spans.  Returns the charged
        duration.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return 0.0
        node = self.node
        owners = self.table.rank_of_row(rows)
        total_bytes = int(rows.size) * self.row_bytes
        remote = float(np.count_nonzero(owners != rank)) / max(rows.size, 1)
        remote_bytes = int(round(total_bytes * remote))
        plain_rows = raw_rows - atomic_rows
        t = (
            costmodel.hash_table_time(max(raw_rows, rows.size))
            + costmodel.backward_scatter_time(
                plain_rows, atomic_rows, self.row_bytes
            )
            + costmodel.gather_time(
                total_bytes, self.row_bytes, node.num_gpus,
                remote_fraction=remote,
            )
        )
        clock = node.gpu_clock[rank]
        start = clock.now
        clock.advance(
            t, phase=phase, category="comm",
            args={"rows": int(rows.size), "nbytes": total_bytes,
                  "remote_bytes": remote_bytes, "raw_rows": int(raw_rows),
                  "tensor": self.tag},
        )
        node.streams.comm(0).record(
            start, clock.now, phase=phase, category="comm",
            args={"rows": int(rows.size), "nbytes": total_bytes,
                  "remote_bytes": remote_bytes, "tensor": self.tag},
        )

        self.grad_stats["steps"] += 1
        self.grad_stats["raw_rows"] += int(raw_rows)
        self.grad_stats["rows_touched"] += int(rows.size)
        self.grad_stats["grad_bytes"] += total_bytes
        self.grad_stats["remote_grad_bytes"] += remote_bytes
        self.grad_stats["grad_time"] += t

        reg = metrics.get_registry()
        now = clock.now
        reg.counter("embedding_rows_touched_total", tensor=self.tag).inc(
            rows.size, t=now
        )
        reg.counter(
            "embedding_link_bytes_total", tensor=self.tag, link="nvlink"
        ).inc(remote_bytes, t=now)
        reg.counter(
            "embedding_link_bytes_total", tensor=self.tag, link="hbm"
        ).inc(total_bytes - remote_bytes, t=now)
        reg.counter("embedding_grad_seconds_total", tensor=self.tag).inc(t)
        reg.counter("phase_seconds_total", phase=phase).inc(t)
        return t

    # -- functional row access (the sparse optimizer's KV surface) -----------

    def read_rows(self, rows: np.ndarray) -> np.ndarray:
        """Functional read of ``rows`` (no clock charge — the update path
        prices its traffic through :meth:`push_row_grads`)."""
        return self.table.gather_no_cost(rows)

    def write_rows(self, rows: np.ndarray, values: np.ndarray) -> None:
        """Functional write of ``rows`` (costing handled by the caller)."""
        self.table.scatter_no_cost(rows, values)

    # -- lifecycle ------------------------------------------------------------

    def rebuild_on(
        self, node: SimNode, charge_setup: bool = True
    ) -> "WholeEmbedding":
        """Re-shard the table onto ``node`` (elastic shrink/grow recovery).

        Row *values* and global row IDs are preserved exactly; only the
        row->shard routing changes with the new GPU count.  Pending row
        gradients do not survive (they referenced the dead layout).
        """
        clone = WholeEmbedding(
            node, self.num_rows, self.dim, rng=None, tag=self.tag,
            partition=self.table.partition, charge_setup=charge_setup,
        )
        data = self.table.gather_no_cost(
            np.arange(self.num_rows, dtype=np.int64)
        )
        if charge_setup:
            clone.table.load_from_host(data, phase="embed_load")
        else:
            clone.table.scatter_no_cost(
                np.arange(self.num_rows, dtype=np.int64), data
            )
        return clone

    def state_dict(self) -> np.ndarray:
        """A host-side copy of the full table (checkpointing)."""
        return self.table.gather_no_cost(
            np.arange(self.num_rows, dtype=np.int64)
        )

    def load_state_dict(self, array: np.ndarray) -> None:
        """Restore the full table from a host-side copy (no clock charge)."""
        array = np.asarray(array, dtype=np.float32).reshape(
            self.num_rows, self.dim
        )
        self.table.scatter_no_cost(
            np.arange(self.num_rows, dtype=np.int64), array
        )

    def stats_dict(self) -> dict:
        """Gather + update statistics for run reports."""
        return {**self.table.stats, **self.grad_stats}

    def free(self) -> None:
        self.table.free()
        self._pending = []

    def __repr__(self) -> str:
        return (
            f"WholeEmbedding({self.num_rows}x{self.dim}, tag={self.tag!r}, "
            f"partition={self.table.partition!r})"
        )
