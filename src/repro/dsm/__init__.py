"""Multi-GPU distributed shared memory library (the WholeMemory substrate).

Paper §III-B: each training process owns one GPU, allocates its partition of
a logically-shared allocation with ``cudaMalloc``, exports it with
``cudaIpcGetMemHandle``, all-gathers the handles, opens peers' handles with
``cudaIpcOpenMemHandle``, and stores the mapped pointers in a per-device
*memory pointer table*.  After this one-time setup every GPU can load/store
any peer's memory inside a single CUDA kernel over NVLink (GPUDirect P2P).

This package reproduces that protocol step-by-step:

- :mod:`repro.dsm.ipc` — IPC handle objects, export and open;
- :mod:`repro.dsm.pointer_table` — the per-device pointer table;
- :mod:`repro.dsm.whole_memory` — partitioned shared allocations;
- :mod:`repro.dsm.whole_tensor` — typed 2-D tensors over WholeMemory with
  costed gather/scatter (the op behind feature storage);
- :mod:`repro.dsm.feature_cache` — per-rank hot-row HBM caches over the
  gather path (degree-ordered static and CLOCK policies);
- :mod:`repro.dsm.tiered_tensor` — the out-of-core tier beneath the DSM
  (warm rows pinned host / cold rows on disk, zero-copy PCIe pricing);
- :mod:`repro.dsm.unified_memory` — the CUDA UM page-migration alternative
  (Table I comparison);
- :mod:`repro.dsm.comm` — NCCL-style collectives over the *distributed
  memory* view (the baseline in Fig. 4/Fig. 10).
"""

from repro.dsm.ipc import IpcHandle, ipc_get_mem_handle, ipc_open_mem_handle
from repro.dsm.pointer_table import MemoryPointerTable
from repro.dsm.whole_memory import WholeMemory
from repro.dsm.whole_tensor import WholeTensor
from repro.dsm.sparse_embedding import WholeEmbedding, dedup_row_grads
from repro.dsm.feature_cache import FeatureCache
from repro.dsm.host_tensor import HostPinnedTensor
from repro.dsm.tiered_tensor import TieredFeatureCache, TieredTensor
from repro.dsm.unified_memory import UnifiedMemorySpace
from repro.dsm.comm import Communicator

__all__ = [
    "IpcHandle",
    "ipc_get_mem_handle",
    "ipc_open_mem_handle",
    "MemoryPointerTable",
    "WholeMemory",
    "WholeTensor",
    "WholeEmbedding",
    "dedup_row_grads",
    "FeatureCache",
    "HostPinnedTensor",
    "TieredTensor",
    "TieredFeatureCache",
    "UnifiedMemorySpace",
    "Communicator",
]
