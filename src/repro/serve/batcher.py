"""Request model, simulated arrival processes, dynamic micro-batching.

Online inference traffic is a stream of tiny independent requests; GPUs want
large coalesced batches.  The standard reconciliation is a *dynamic
micro-batching queue* (Clipper, TensorFlow Serving, Triton): a batch closes
when it reaches ``max_batch_size`` **or** when its oldest request has waited
``max_wait_us`` microseconds, whichever comes first — the two knobs trade
throughput (bigger batches amortise kernel launches and ride the segment-size
bandwidth curve) against tail latency (the deadline bounds queueing delay).

Everything here is a *pure* function of the arrival times and the server's
free time, so batch formation is deterministic and unit-testable without any
clocks: :meth:`MicroBatcher.next_batch` computes one batching decision, and
the engine replays decisions against the simulated per-device clocks.

Arrival processes generate the simulated request streams:

- :func:`poisson_arrivals` — memoryless open-loop traffic at a target QPS
  (i.i.d. exponential inter-arrival gaps), the standard load-test model;
- :func:`bursty_arrivals` — a two-state Markov-modulated Poisson process
  that alternates calm and burst phases, the tail-latency stress model
  (real user traffic is bursty at every time scale).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import config


@dataclass(frozen=True)
class Request:
    """One inference request: classify/embed one node of the served graph.

    ``arrival`` is the simulated arrival offset in seconds relative to the
    engine's serve-start time; ``node_id`` is a *stored* node ID of the
    :class:`~repro.graph.storage.MultiGpuGraphStore` being served.
    """

    request_id: int
    node_id: int
    arrival: float


@dataclass(frozen=True)
class BatchDecision:
    """One micro-batch the queue decided to dispatch.

    ``close_time`` is when the batch left the queue: the moment it filled,
    its deadline expired, or the server freed up — whichever bound applied.
    ``count`` requests starting at ``first_index`` form the batch.
    """

    first_index: int
    count: int
    close_time: float
    #: requests arrived but still queued *after* this batch was taken
    queue_depth_after: int

    @property
    def last_index(self) -> int:
        """Index one past the final request of the batch."""
        return self.first_index + self.count


class MicroBatcher:
    """Deadline-and-capacity dynamic batching over an arrival sequence.

    The queue policy, given the head request's arrival ``a0`` and the
    server's free time ``t_free``:

    1. the batch cannot close before ``max(a0, t_free)`` (nothing to serve
       before the head arrives; no one to serve it before the GPU frees);
    2. if the ``max_batch_size``-th request arrives before the head's
       deadline ``a0 + max_wait`` (and before/at the floor above), the batch
       closes *full* the moment it fills;
    3. otherwise it closes at ``max(floor, a0 + max_wait)`` with whatever
       has arrived by then (at least the head), capped at
       ``max_batch_size`` — a server that was busy past the deadline grabs
       everything waiting, up to capacity, the instant it frees.
    """

    def __init__(self, max_batch_size: int = 32,
                 max_wait_us: float = 200.0):
        """``max_batch_size`` caps batch occupancy; ``max_wait_us`` bounds
        how long the oldest request may sit in the queue (microseconds;
        ``0`` dispatches greedily — every batch is whatever already
        arrived)."""
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_us < 0:
            raise ValueError("max_wait_us must be >= 0")
        self.max_batch_size = int(max_batch_size)
        self.max_wait_us = float(max_wait_us)
        self.max_wait = float(max_wait_us) * config.US

    def next_batch(
        self, arrivals: np.ndarray, first_index: int, t_free: float
    ) -> BatchDecision:
        """Decide the next batch from sorted ``arrivals[first_index:]``.

        ``t_free`` is the serving replica's current free time.  Pure and
        deterministic — no state, no clocks.
        """
        arrivals = np.asarray(arrivals, dtype=np.float64)
        n = arrivals.shape[0]
        if not 0 <= first_index < n:
            raise IndexError(f"first_index {first_index} out of range")
        cap = self.max_batch_size
        head = float(arrivals[first_index])
        floor = max(head, float(t_free))
        deadline = max(floor, head + self.max_wait)
        fill_index = first_index + cap - 1
        if fill_index < n and float(arrivals[fill_index]) <= deadline:
            # rule 2: the capacity-th request lands inside the window —
            # close full, at its arrival (or at the floor if it was already
            # waiting when the server freed)
            close = max(floor, float(arrivals[fill_index]))
            count = cap
        else:
            # rule 3: deadline (or immediate, post-deadline) close
            close = deadline
            arrived = int(np.searchsorted(arrivals, close, side="right"))
            count = min(max(arrived - first_index, 1), cap)
        depth_after = (
            int(np.searchsorted(arrivals, close, side="right"))
            - first_index
            - count
        )
        return BatchDecision(
            first_index=first_index,
            count=count,
            close_time=close,
            queue_depth_after=max(depth_after, 0),
        )

    def plan(self, arrivals: np.ndarray,
             service_time: float = 0.0) -> list[BatchDecision]:
        """Batch an entire arrival sequence against a fixed service time.

        A convenience for unit tests and queueing what-ifs: replays
        :meth:`next_batch` with the server freeing ``service_time`` seconds
        after each close.  The engine uses :meth:`next_batch` directly with
        the real simulated clocks instead.
        """
        arrivals = np.asarray(arrivals, dtype=np.float64)
        out: list[BatchDecision] = []
        i, t_free = 0, 0.0
        while i < arrivals.shape[0]:
            d = self.next_batch(arrivals, i, t_free)
            out.append(d)
            t_free = d.close_time + float(service_time)
            i = d.last_index
        return out


# ---------------------------------------------------------------------------
# Simulated arrival processes
# ---------------------------------------------------------------------------


def poisson_arrivals(
    rate_qps: float, num_requests: int, rng: np.random.Generator
) -> np.ndarray:
    """Arrival offsets (seconds) of a Poisson stream at ``rate_qps``.

    Inter-arrival gaps are i.i.d. exponential with mean ``1/rate_qps``; the
    first request arrives after one gap (offset > 0).
    """
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    gaps = rng.exponential(1.0 / rate_qps, size=int(num_requests))
    return np.cumsum(gaps)


def bursty_arrivals(
    rate_qps: float,
    num_requests: int,
    rng: np.random.Generator,
    burst_factor: float = 8.0,
    burst_fraction: float = 0.2,
    mean_phase_requests: int = 32,
) -> np.ndarray:
    """Arrival offsets of a two-state Markov-modulated Poisson process.

    The stream alternates *calm* and *burst* phases: ``burst_fraction`` of
    the requests belong to burst phases (geometric phase lengths, burst
    phases averaging ``mean_phase_requests`` arrivals), and burst phases run
    at ``burst_factor`` times the calm rate.  The calm rate is solved so the
    long-run mean rate equals ``rate_qps`` — same marginal load as
    :func:`poisson_arrivals`, much heavier queueing tails (the p99 stress
    case).
    """
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    if not 0.0 < burst_fraction < 1.0:
        raise ValueError("burst_fraction must be in (0, 1)")
    if burst_factor < 1.0:
        raise ValueError("burst_factor must be >= 1")
    # mean gap = (1-f)/calm + f/(factor*calm) must equal 1/rate
    f = burst_fraction
    calm_rate = rate_qps * ((1.0 - f) + f / burst_factor)
    burst_rate = calm_rate * burst_factor
    # asymmetric per-arrival switching with stationary burst share f:
    # leave-burst prob b sets the burst phase length; leave-calm prob a
    # balances the chain (f = a / (a + b))
    leave_burst = 1.0 / max(int(mean_phase_requests), 1)
    leave_calm = leave_burst * f / (1.0 - f)

    gaps = np.empty(int(num_requests), dtype=np.float64)
    in_burst = False
    for i in range(int(num_requests)):
        rate = burst_rate if in_burst else calm_rate
        gaps[i] = rng.exponential(1.0 / rate)
        if rng.random() < (leave_burst if in_burst else leave_calm):
            in_burst = not in_burst
    return np.cumsum(gaps)


def synthesize_requests(
    num_requests: int,
    rate_qps: float,
    node_pool: np.ndarray,
    rng: np.random.Generator,
    process: str = "poisson",
    **process_kwargs,
) -> list[Request]:
    """Build a request stream: arrival process × node popularity.

    ``node_pool`` is the population of stored node IDs requests draw from
    (uniformly, with replacement) — pass e.g. ``store.test_nodes``, or a
    degree-weighted sample for a hotter workload.  ``process`` selects
    ``"poisson"`` or ``"bursty"`` arrivals; extra kwargs flow to the arrival
    generator.
    """
    node_pool = np.asarray(node_pool, dtype=np.int64)
    if node_pool.size == 0:
        raise ValueError("node_pool is empty")
    if process == "poisson":
        arrivals = poisson_arrivals(rate_qps, num_requests, rng,
                                    **process_kwargs)
    elif process == "bursty":
        arrivals = bursty_arrivals(rate_qps, num_requests, rng,
                                   **process_kwargs)
    else:
        raise ValueError("process must be 'poisson' or 'bursty'")
    nodes = rng.choice(node_pool, size=int(num_requests), replace=True)
    return [
        Request(request_id=i, node_id=int(nodes[i]),
                arrival=float(arrivals[i]))
        for i in range(int(num_requests))
    ]
