"""Online GNN inference serving on the distributed shared memory.

The training side of WholeGraph keeps graph structure and features sharded
across GPU memory so that sampling and gathering never leave the device
fabric; exactly the same argument applies to *online* serving, where a
request asks for the embedding or class of one node and per-request neighbor
sampling dominates tail latency.  This package turns a trained model plus a
:class:`~repro.graph.storage.MultiGpuGraphStore` into a served endpoint:

- :mod:`repro.serve.model` — :class:`FrozenModel`, a forward-only snapshot
  of a trained :class:`~repro.nn.module.Module` (no autograd tape);
- :mod:`repro.serve.batcher` — the request model, simulated arrival
  processes (Poisson and bursty) and the dynamic micro-batching queue;
- :mod:`repro.serve.engine` — :class:`InferenceEngine`, the sharded
  embedding/inference server that routes requests across GPU replicas and
  charges real sample/gather/forward costs on the per-device clocks;
- :mod:`repro.serve.report` — :class:`ServeReport`, the SLO-grade run
  artifact (p50/p95/p99 latency, QPS, batch occupancy, queue depth).
"""

from repro.serve.batcher import (
    MicroBatcher,
    Request,
    bursty_arrivals,
    poisson_arrivals,
    synthesize_requests,
)
from repro.serve.engine import InferenceEngine, ServeResult
from repro.serve.model import FrozenModel
from repro.serve.recsys import RecsysEngine
from repro.serve.report import ServeReport, latency_summary

__all__ = [
    "FrozenModel",
    "InferenceEngine",
    "RecsysEngine",
    "MicroBatcher",
    "Request",
    "ServeReport",
    "ServeResult",
    "bursty_arrivals",
    "latency_summary",
    "poisson_arrivals",
    "synthesize_requests",
]
