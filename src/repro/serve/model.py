"""Frozen-model export: a forward-only snapshot of a trained module.

Serving must not share mutable state with training: a request that races a
concurrent fine-tuning step would read half-updated weights, and autograd
tape construction is pure overhead on a path that never calls ``backward``.
:class:`FrozenModel` therefore *snapshots* the weights at export time (deep
copy, so later optimizer steps leave the serving copy untouched), drops every
parameter out of the autograd graph (``requires_grad=False`` — the tape
machinery in :class:`~repro.nn.tensor.Tensor` then records no parents and no
pullbacks), and pins the module in eval mode so dropout is a no-op.

The forward math is bit-identical to running the original module under
``eval()``: same layers, same float32 kernels, no stochastic ops.
``tests/test_serve.py`` pins that equality.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.ops.neighbor_sampler import SampledSubgraph


class FrozenModel:
    """A weight snapshot of a trained :class:`Module`, forward-only."""

    def __init__(self, module: Module):
        """Snapshot ``module`` for serving.

        The module is deep-copied; the copy's parameters are detached from
        autograd (``requires_grad=False``, gradients dropped) and the copy
        is switched to eval mode permanently.  The original module is not
        modified and may keep training.
        """
        if not isinstance(module, Module):
            raise TypeError(
                f"FrozenModel wraps a repro.nn Module, got {type(module)!r}"
            )
        self._module = copy.deepcopy(module)
        self._module.eval()
        for p in self._module.parameters():
            p.requires_grad = False
            p.grad = None

    @classmethod
    def freeze(cls, module: Module) -> "FrozenModel":
        """Alias constructor mirroring ``torch.jit.freeze`` ergonomics."""
        return cls(module)

    # -- introspection -------------------------------------------------------

    @property
    def module_name(self) -> str:
        """Class name of the snapshotted module (e.g. ``GraphSage``)."""
        return type(self._module).__name__

    def num_parameters(self) -> int:
        """Total scalar parameter count of the snapshot."""
        return self._module.num_parameters()

    def param_bytes(self) -> int:
        """Total bytes of the snapshotted weights (the export size)."""
        return sum(p.data.nbytes for p in self._module.parameters())

    def state_dict(self) -> list[np.ndarray]:
        """Copies of the frozen parameter arrays, in parameter order."""
        return self._module.state_dict()

    # -- the forward-only path ----------------------------------------------

    def __call__(
        self, subgraph: SampledSubgraph, x: np.ndarray | Tensor
    ) -> np.ndarray:
        """Forward ``x`` (features of ``subgraph.input_nodes``) to logits.

        Accepts a raw NumPy feature matrix (the gather output) or a
        :class:`Tensor`; returns the seed-row logits as a NumPy array.  No
        autograd tape is built: every parameter has ``requires_grad=False``,
        so intermediate tensors record no parents.
        """
        if isinstance(x, Tensor):
            x = x.data
        out = self._module(subgraph, Tensor(x), None)
        assert not out.requires_grad, "frozen forward built an autograd tape"
        return out.data

    def predict(
        self, subgraph: SampledSubgraph, x: np.ndarray | Tensor
    ) -> np.ndarray:
        """Class labels (argmax over logits) for the subgraph's seeds."""
        return self(subgraph, x).argmax(axis=-1)

    # -- cost model -----------------------------------------------------------

    def estimate_inference_time(self, subgraph: SampledSubgraph) -> float:
        """Simulated seconds of one forward pass over ``subgraph``."""
        return self._module.estimate_inference_time(subgraph)

    @property
    def num_layers(self) -> int:
        """Sampling depth the model expects (one block per conv layer)."""
        return len(getattr(self._module, "convs", ()))

    def __repr__(self) -> str:
        return (
            f"FrozenModel({self.module_name}, "
            f"{self.num_parameters()} params, forward-only)"
        )
