"""Recsys serving: user requests scored against an item-tower index.

The recommendation counterpart of :class:`~repro.serve.engine.InferenceEngine`:
a request names a *user* node; serving it means sampling the user's
neighborhood, gathering the user's trained :class:`~repro.dsm.sparse_embedding.
WholeEmbedding` rows (not the static feature matrix), encoding the user with
the frozen GNN, and scoring the encoding against a precomputed *item index* —
the offline-encoded catalogue every production recsys keeps hot — to answer
with the top-k items.

The engine reuses the whole serving stack (micro-batcher, replica routing,
serve trace lane, :class:`~repro.serve.report.ServeReport`) and charges its
stages under the same ``serve_sample`` / ``serve_gather`` / ``serve_infer``
phases, so latency blame and the golden serve manifests read recsys runs the
same way they read classification runs.  ``serve()`` answers with the top-1
item per request; :meth:`RecsysEngine.recommend` is the direct functional
top-k surface the quality tests use.
"""

from __future__ import annotations

import numpy as np

from repro.dsm.sparse_embedding import WholeEmbedding
from repro.graph.storage import MultiGpuGraphStore
from repro.hardware import costmodel
from repro.serve.batcher import MicroBatcher
from repro.serve.engine import InferenceEngine
from repro.serve.model import FrozenModel
from repro.telemetry import metrics
from repro.utils.rng import spawn_rng


class RecsysEngine(InferenceEngine):
    """Serve top-k item recommendations over a trained embedding table."""

    def __init__(
        self,
        store: MultiGpuGraphStore,
        model: FrozenModel,
        embedding: WholeEmbedding,
        item_nodes: np.ndarray,
        fanouts=None,
        batcher: MicroBatcher | None = None,
        replicas=None,
        routing: str = "round_robin",
        top_k: int = 10,
        score_scale: float | None = None,
        index_seed: int = 0,
        name: str = "recsys-serve",
    ):
        """``model`` is the frozen link-prediction encoder; ``embedding``
        the trained table it was trained against; ``item_nodes`` the
        candidate catalogue (e.g. ``BipartiteDataset.item_nodes``).  The
        item index is encoded once at construction on replica 0 — a bulk
        sample+gather+forward charged under the serve phases, the offline
        index build.  ``score_scale`` must match training (the trainer's
        ``1/sqrt(hidden)``); default derives it from the encoding width.
        """
        if model is None:
            raise ValueError("recsys serving needs a frozen encoder")
        super().__init__(
            store, model=model, fanouts=fanouts, batcher=batcher,
            replicas=replicas, routing=routing, name=name,
        )
        self.embedding = embedding
        self.item_nodes = np.asarray(item_nodes, dtype=np.int64)
        if self.item_nodes.size == 0:
            raise ValueError("need at least one candidate item")
        self.top_k = int(top_k)
        if not 1 <= self.top_k <= self.item_nodes.size:
            raise ValueError(
                f"top_k must be in [1, {self.item_nodes.size}]"
            )
        #: top-k item lists of the most recent serve() call's last batch
        self._last_topk: np.ndarray | None = None
        self.item_index = self._build_item_index(index_seed)
        self.score_scale = (
            float(score_scale) if score_scale is not None
            else 1.0 / float(np.sqrt(self.item_index.shape[1]))
        )

    # -- the offline item tower ------------------------------------------------

    def _build_item_index(self, seed: int) -> np.ndarray:
        """Encode the whole catalogue once (the offline index build).

        One bulk pass on replica 0: neighborhood sample, embedding-row
        gather and frozen forward, charged under the standard serve phases
        so the index build shows up in the report's phase ledger.
        """
        rank = self.replicas[0]
        rng = spawn_rng(seed, "recsys-index")
        sub = self.sampler.sample(
            self.item_nodes, rank, rng, phase="serve_sample"
        )
        rows = self.embedding.gather(
            sub.input_nodes, rank, phase="serve_gather"
        )
        index = self.model(sub, rows)
        clock = self.node.gpu_clock[rank]
        clock.advance(
            self.model.estimate_inference_time(sub),
            phase="serve_infer", category="serve",
            args={"seeds": int(self.item_nodes.size),
                  "input_nodes": int(sub.input_nodes.shape[0]),
                  "stage": "index_build"},
        )
        self.node.sync()
        return np.ascontiguousarray(index, dtype=np.float32)

    # -- the online user tower -------------------------------------------------

    def _execute(
        self, seeds: np.ndarray, rank: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Encode one user batch and score it against the item index.

        Returns the top-1 item node ID per request (the ``predictions``
        surface of the base serve loop); the full top-k lists of the batch
        are stashed on ``self._last_topk``.
        """
        node = self.node
        clock = node.gpu_clock[rank]
        uniq, inverse = np.unique(seeds, return_inverse=True)
        t0 = clock.now
        sub = self.sampler.sample(uniq, rank, rng, phase="serve_sample")
        t1 = clock.now
        rows = self.embedding.gather(
            sub.input_nodes, rank, phase="serve_gather"
        )
        t2 = clock.now
        encodings = self.model(sub, rows)
        scores = (encodings @ self.item_index.T) * self.score_scale
        topk = self._topk_items(scores)
        clock.advance(
            self.model.estimate_inference_time(sub)
            + costmodel.dense_compute_time(
                2.0 * encodings.shape[0]
                * self.item_index.shape[0] * self.item_index.shape[1]
            ),
            phase="serve_infer", category="serve",
            args={"seeds": int(uniq.shape[0]),
                  "input_nodes": int(sub.input_nodes.shape[0]),
                  "candidates": int(self.item_index.shape[0])},
        )
        self._last_exec = {
            "sample": t1 - t0, "gather": t2 - t1, "infer": clock.now - t2,
            "rows": int(uniq.shape[0]),
            "input_nodes": int(sub.input_nodes.shape[0]),
        }
        self._last_topk = topk[inverse]
        metrics.get_registry().counter(
            "recsys_scored_candidates_total"
        ).inc(int(uniq.shape[0]) * int(self.item_index.shape[0]))
        return topk[inverse, 0]

    def _topk_items(self, scores: np.ndarray) -> np.ndarray:
        """Top-k item node IDs per row of ``scores``, best first."""
        k = self.top_k
        part = np.argpartition(-scores, k - 1, axis=1)[:, :k]
        order = np.argsort(
            -np.take_along_axis(scores, part, axis=1), axis=1, kind="stable"
        )
        return self.item_nodes[np.take_along_axis(part, order, axis=1)]

    def recommend(
        self, user_nodes: np.ndarray, rank: int | None = None, seed: int = 0,
    ) -> np.ndarray:
        """Functional top-k recommendations (no clocks, no batcher).

        The direct quality surface: samples and encodes ``user_nodes`` with
        uncharged ops and returns a ``(len(user_nodes), top_k)`` array of
        item node IDs, best first.  Deterministic in ``seed``.
        """
        from repro.ops.neighbor_sampler import NeighborSampler

        user_nodes = np.asarray(user_nodes, dtype=np.int64)
        rank = self.replicas[0] if rank is None else int(rank)
        rng = spawn_rng(seed, "recsys-recommend")
        sampler = NeighborSampler(self.store, self.fanouts, charge=False)
        uniq, inverse = np.unique(user_nodes, return_inverse=True)
        sub = sampler.sample(uniq, rank, rng)
        rows = self.embedding.gather_no_cost(sub.input_nodes)
        encodings = self.model(sub, rows)
        scores = (encodings @ self.item_index.T) * self.score_scale
        return self._topk_items(scores)[inverse]

    def _config_dict(self) -> dict:
        cfg = super()._config_dict()
        cfg["mode"] = "recsys"
        cfg["top_k"] = self.top_k
        cfg["num_candidates"] = int(self.item_nodes.size)
        cfg["embedding_dim"] = self.embedding.dim
        cfg["score_scale"] = self.score_scale
        return cfg
