"""The :class:`ServeReport` run artifact: SLO numbers of one serve run.

Training runs leave a :class:`~repro.telemetry.run_report.RunReport` behind;
serving runs leave a ``ServeReport`` — the same flat-JSON, diff-two-files
philosophy, but the headline numbers are *service-level objectives*: latency
percentiles (p50/p95/p99), sustained QPS, batch occupancy and queue depth,
plus the per-phase simulated-time breakdown that explains *where* each
microsecond of a request went (queueing vs sampling vs gather vs forward).

Percentiles here are **exact** (``np.percentile`` over every request's
latency), not reconstructed from the power-of-two histogram buckets in the
metrics registry — the registry histogram is for trace tooling; the report
is the SLO record.

Determinism contract: a ``ServeReport`` passed through
:func:`~repro.telemetry.run_report.scrub_report` is byte-identical across
same-seed runs (``tests/test_serve.py`` pins this), exactly like training
reports.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.run_report import SCHEMA_VERSION, json_safe

#: the latency quantiles every serve artifact reports (SLO-grade tails)
LATENCY_QUANTILES = (50.0, 90.0, 95.0, 99.0)


def latency_summary(latencies) -> dict:
    """Exact latency statistics of a batch of per-request latencies.

    Returns ``{count, mean, min, max, p50, p90, p95, p99}`` (seconds); all
    ``None``/zero-safe on an empty input.
    """
    lat = np.asarray(latencies, dtype=np.float64)
    if lat.size == 0:
        return {"count": 0, "mean": None, "min": None, "max": None,
                **{f"p{int(q)}": None for q in LATENCY_QUANTILES}}
    out = {
        "count": int(lat.size),
        "mean": float(lat.mean()),
        "min": float(lat.min()),
        "max": float(lat.max()),
    }
    for q in LATENCY_QUANTILES:
        out[f"p{int(q)}"] = float(np.percentile(lat, q))
    return out


@dataclass
class ServeReport:
    """The JSON manifest of one online-serving run."""

    name: str
    kind: str = "serve"
    #: serving knobs: batcher limits, routing policy, fanouts, cache config
    config: dict = field(default_factory=dict)
    seed: int | None = None
    num_requests: int = 0
    num_batches: int = 0
    #: simulated seconds from serve start to the last completion
    duration_seconds: float = 0.0
    #: sustained throughput over the run (requests / duration)
    qps: float = 0.0
    #: exact latency percentiles (see :func:`latency_summary`)
    latency: dict = field(default_factory=dict)
    #: batch-occupancy statistics (requests per dispatched batch)
    batch_occupancy: dict = field(default_factory=dict)
    #: one row per serving replica: rank, device, requests, batches, and the
    #: replica's own latency summary (routing skew shows up here)
    per_replica: list = field(default_factory=list)
    #: serve-phase simulated seconds (serve_wait/serve_sample/...)
    phase_totals: dict = field(default_factory=dict)
    #: metrics-registry snapshot at the end of the run
    metrics: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)
    #: rolling-window QPS / queue-depth / latency series (autoscaler input);
    #: only present when the engine ran with ``analysis=True``
    timeseries: dict | None = None
    #: per-stage latency decomposition of the p99 tail (queue wait vs
    #: sample vs gather vs infer); only present with ``analysis=True``
    latency_blame: dict | None = None
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> dict:
        """JSON-safe dict view (numpy scalars/arrays converted).

        The opt-in analysis blocks (``timeseries``, ``latency_blame``) are
        omitted entirely when unset so reports from engines that never asked
        for them — including every pinned golden manifest — serialise
        byte-identically to the pre-analysis schema.
        """
        out = json_safe(dataclasses.asdict(self))
        for key in ("timeseries", "latency_blame"):
            if out.get(key) is None:
                out.pop(key, None)
        return out

    def to_json(self, indent: int | None = 2) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def save(self, path) -> None:
        """Write the manifest to ``path`` (trailing newline included)."""
        with open(path, "w") as f:
            f.write(self.to_json() + "\n")

    @classmethod
    def from_dict(cls, data: dict) -> "ServeReport":
        """Rebuild from a JSON-loaded dict, ignoring unknown keys."""
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    @classmethod
    def load(cls, path) -> "ServeReport":
        """Load a saved manifest."""
        with open(path) as f:
            return cls.from_dict(json.load(f))
