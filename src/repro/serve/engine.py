"""The sharded online inference engine.

This is the serving counterpart of :class:`~repro.train.trainer.WholeGraphTrainer`:
requests arrive on a simulated clock, are routed to a GPU *replica*, queued
through the dynamic micro-batcher, and each dispatched batch runs the real
data path — neighbor sampling over the sharded CSR, feature gather through
:class:`~repro.dsm.whole_tensor.WholeTensor` / the hot-row
:class:`~repro.dsm.feature_cache.FeatureCache`, and the frozen forward — so
every request charges genuine bytes-per-link and kernel costs to the
replica's :class:`~repro.hardware.clock.SimClock`.

Per-request latency is *completion minus arrival* on the simulated clock:
queueing delay (the micro-batcher's wait), then sampling, gather and forward
service time.  The engine reports exact p50/p90/p95/p99 over the run in a
:class:`~repro.serve.report.ServeReport`, streams queue-depth/occupancy/QPS
into the metrics registry, and draws each dispatched batch on a dedicated
``<gpu>/serve`` trace lane (the same synthetic-lane trick the grad-sync
overlap engine uses for its ``<gpu>/nccl`` lane).

Two serving modes:

- **model serving** (``model=`` a :class:`~repro.serve.model.FrozenModel`):
  sample an L-layer sub-graph per batch, gather the deepest frontier's
  features, run the frozen forward, answer with class predictions;
- **embedding lookup** (``model=None``): answer with the raw feature rows of
  the requested nodes — a pure sharded-gather workload, the lower bound of
  the latency story.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import config
from repro.graph.storage import MultiGpuGraphStore
from repro.ops.neighbor_sampler import NeighborSampler
from repro.sim import Event
from repro.serve.batcher import MicroBatcher, Request
from repro.serve.model import FrozenModel
from repro.serve.report import ServeReport, latency_summary
from repro.telemetry import metrics
from repro.utils.rng import RngPool

#: routing policies: request index round-robin vs node-ID hash affinity
ROUTING_POLICIES = ("round_robin", "hash")


@dataclass
class ServeResult:
    """Everything one :meth:`InferenceEngine.serve` call produced.

    ``predictions[i]`` / ``latencies[i]`` / ``replica_of[i]`` align with
    ``requests[i]`` of the submitted list (``predictions`` is ``None`` in
    embedding-lookup mode).  ``report`` is the saved-to-disk artifact.
    """

    latencies: np.ndarray
    predictions: np.ndarray | None
    replica_of: np.ndarray
    report: ServeReport


class InferenceEngine:
    """Routes, batches and executes requests over the sharded store."""

    def __init__(
        self,
        store: MultiGpuGraphStore,
        model: FrozenModel | None = None,
        fanouts=None,
        batcher: MicroBatcher | None = None,
        replicas=None,
        routing: str = "round_robin",
        name: str = "serve",
    ):
        """Build a serving endpoint over ``store``.

        ``model`` enables full GNN inference (``fanouts`` defaults to
        ``[config.FANOUT] * model.num_layers`` and must match the model's
        layer count); ``model=None`` serves raw feature rows.  ``replicas``
        is the list of GPU ranks that serve (default: every GPU of the
        store's node).  ``routing`` is ``"round_robin"`` (load-balanced) or
        ``"hash"`` (node-ID affinity, cache-friendlier).  ``batcher``
        defaults to ``MicroBatcher()``'s knobs.
        """
        if routing not in ROUTING_POLICIES:
            raise ValueError(f"routing must be one of {ROUTING_POLICIES}")
        self.store = store
        self.node = store.node
        self.model = model
        if model is not None:
            if fanouts is None:
                fanouts = [config.FANOUT] * model.num_layers
            if len(fanouts) != model.num_layers:
                raise ValueError(
                    f"{len(fanouts)} fanouts for a "
                    f"{model.num_layers}-layer model"
                )
        self.fanouts = [int(f) for f in fanouts] if fanouts else None
        self.sampler = (
            NeighborSampler(store, self.fanouts, charge=True)
            if self.fanouts
            else None
        )
        self.batcher = batcher if batcher is not None else MicroBatcher()
        if replicas is None:
            replicas = list(range(self.node.num_gpus))
        if not replicas:
            raise ValueError("need at least one serving replica")
        self.replicas = [int(r) for r in replicas]
        self.routing = routing
        self.name = name
        #: stage-time stash of the most recent :meth:`_execute` call
        self._last_exec: dict = {}

    # -- routing ----------------------------------------------------------------

    def _route(self, order: np.ndarray, node_ids: np.ndarray) -> np.ndarray:
        """Replica *index* (into ``self.replicas``) per request, given the
        arrival-sorted request order."""
        n_rep = len(self.replicas)
        out = np.empty(order.shape[0], dtype=np.int64)
        if self.routing == "round_robin":
            # arrival-order round robin: consecutive requests hit
            # consecutive replicas regardless of submission order
            out[order] = np.arange(order.shape[0], dtype=np.int64) % n_rep
        else:  # hash affinity: a node always hits the same replica
            out = node_ids % n_rep
        return out

    # -- the serve loop ----------------------------------------------------------

    def serve(
        self, requests: list[Request], seed: int = 0, analysis: bool = False,
    ) -> ServeResult:
        """Serve a simulated request stream; returns the :class:`ServeResult`.

        Deterministic: the same requests, seed and engine configuration give
        a byte-identical scrubbed :class:`ServeReport`.  ``seed`` feeds the
        per-replica sampling RNG streams (unused in embedding mode).

        ``analysis=True`` additionally decomposes every request's latency
        into queue-wait / sample / gather / infer stages and attaches a
        ``latency_blame`` block (which stage owns the p99 tail) plus a
        rolling-window ``timeseries`` (QPS, queue depth, latency — the
        signals a replica autoscaler consumes) to the report.  Analysis is
        pure observation: it never charges a clock, so the schedule and all
        SLO numbers are bit-identical with it on or off.
        """
        if not requests:
            raise ValueError("empty request stream")
        reg = metrics.get_registry()
        node = self.node
        t0 = node.sync(phase="wait")

        arrival = np.array([r.arrival for r in requests], dtype=np.float64)
        node_ids = np.array([r.node_id for r in requests], dtype=np.int64)
        if np.any(arrival < 0):
            raise ValueError("request arrivals must be >= 0")
        # stable arrival order (ties broken by submission index)
        order = np.argsort(arrival, kind="stable")
        replica_idx = self._route(order, node_ids)

        pool = RngPool(int(seed), node.num_gpus)
        n = len(requests)
        latencies = np.zeros(n, dtype=np.float64)
        predictions = (
            np.zeros(n, dtype=np.int64) if self.model is not None else None
        )
        num_batches = 0
        occupancies: list[int] = []
        per_replica_rows = []
        last_completion = t0
        # per-request stage decomposition (analysis mode): every request in
        # a batch shares the batch's service-stage times, but owns its own
        # queueing delay (dispatch - arrival)
        stage_names = ("queue_wait", "sample", "gather", "infer", "other")
        stages = (
            {s: np.zeros(n, dtype=np.float64) for s in stage_names}
            if analysis else None
        )
        batch_rows: list[dict] = []
        completion_at = np.zeros(n, dtype=np.float64) if analysis else None

        for ri, rank in enumerate(self.replicas):
            mine = order[replica_idx[order] == ri]
            if mine.size == 0:
                per_replica_rows.append({
                    "rank": rank,
                    "device": node.gpu_memory[rank].device,
                    "requests": 0, "batches": 0,
                    "latency": latency_summary([]),
                })
                continue
            abs_arrival = t0 + arrival[mine]
            clock = node.gpu_clock[rank]
            stream = node.streams.compute(rank)
            serve_lane = node.streams.lane(rank, "serve")
            rng = pool.rank(rank)
            rep_batches = 0
            i = 0
            while i < mine.size:
                decision = self.batcher.next_batch(abs_arrival, i, clock.now)
                batch = mine[i:decision.last_index]
                # the batch-close deadline is an external event; the replica
                # stream launches the batch behind it, idling (the queueing
                # delay) until it fires
                close = Event.at(decision.close_time, label="batch_close")
                done = stream.launch(
                    lambda b=batch: self._execute(node_ids[b], rank, rng),
                    deps=[close],
                    wait_phase="serve_wait", wait_category="serve",
                    label="serve_batch",
                )
                completion = done.wait()
                dispatch = done.start
                preds = done.value
                exec_info = self._last_exec
                if predictions is not None and preds is not None:
                    predictions[batch] = preds
                latencies[batch] = completion - abs_arrival[
                    i:decision.last_index
                ]
                # the serve lane: one span per dispatched batch, carrying
                # the batch's payload sizes for Perfetto and the analyzer
                serve_lane.record(
                    dispatch, completion,
                    phase="serve_batch", category="serve",
                    args={"occupancy": int(decision.count),
                          "queue_depth": int(decision.queue_depth_after),
                          "rows": int(exec_info.get("rows", 0)),
                          "input_nodes": int(exec_info.get("input_nodes", 0))},
                )
                if analysis:
                    service = completion - dispatch
                    charged = (exec_info.get("sample", 0.0)
                               + exec_info.get("gather", 0.0)
                               + exec_info.get("infer", 0.0))
                    stages["queue_wait"][batch] = dispatch - abs_arrival[
                        i:decision.last_index
                    ]
                    stages["sample"][batch] = exec_info.get("sample", 0.0)
                    stages["gather"][batch] = exec_info.get("gather", 0.0)
                    stages["infer"][batch] = exec_info.get("infer", 0.0)
                    stages["other"][batch] = max(0.0, service - charged)
                    completion_at[batch] = completion
                    batch_rows.append({
                        "rank": rank,
                        "dispatch": float(dispatch),
                        "completion": float(completion),
                        "count": int(decision.count),
                        "queue_depth": int(decision.queue_depth_after),
                    })
                reg.counter("serve_requests_total").inc(decision.count)
                reg.counter("serve_batches_total").inc(1)
                reg.histogram("serve_batch_occupancy").observe(decision.count)
                reg.histogram("serve_latency_seconds").observe(
                    latencies[batch]
                )
                reg.gauge(
                    "serve_queue_depth", replica=str(rank)
                ).set(decision.queue_depth_after, t=dispatch)
                occupancies.append(int(decision.count))
                rep_batches += 1
                num_batches += 1
                i = decision.last_index
            last_completion = max(last_completion, clock.now)
            per_replica_rows.append({
                "rank": rank,
                "device": node.gpu_memory[rank].device,
                "requests": int(mine.size),
                "batches": rep_batches,
                "latency": latency_summary(latencies[mine]),
            })

        duration = last_completion - t0
        qps = n / duration if duration > 0 else 0.0
        reg.gauge("serve_qps").set(qps)
        occ = np.asarray(occupancies, dtype=np.float64)
        report = ServeReport(
            name=self.name,
            config=self._config_dict(),
            seed=int(seed),
            num_requests=n,
            num_batches=num_batches,
            duration_seconds=float(duration),
            qps=float(qps),
            latency=latency_summary(latencies),
            batch_occupancy={
                "mean": float(occ.mean()) if occ.size else None,
                "min": int(occ.min()) if occ.size else None,
                "max": int(occ.max()) if occ.size else None,
            },
            per_replica=per_replica_rows,
            phase_totals={
                p: node.timeline.phase_total(p)
                for p in ("serve_wait", "serve_sample",
                          "serve_gather", "serve_infer")
            },
            metrics=reg.snapshot(),
            latency_blame=(
                _latency_blame(latencies, stages) if analysis else None
            ),
            timeseries=(
                _serve_timeseries(
                    t0, duration, arrival + t0, completion_at,
                    latencies, batch_rows,
                ) if analysis else None
            ),
        )
        return ServeResult(
            latencies=latencies,
            predictions=predictions,
            replica_of=np.asarray(self.replicas, dtype=np.int64)[replica_idx],
            report=report,
        )

    def _execute(
        self, seeds: np.ndarray, rank: int, rng: np.random.Generator
    ) -> np.ndarray | None:
        """Run one dispatched batch on ``rank``, charging its clock.

        Returns the batch's class predictions (model mode) or ``None``
        (embedding mode, where the gathered rows are the response).
        """
        node = self.node
        clock = node.gpu_clock[rank]
        if self.sampler is not None:
            # a batch may ask for the same node twice; dedupe before
            # sampling (AppendUnique requires unique targets) and fan the
            # answer back out — the compute is shared, as a real server
            # coalescing identical queries would share it
            uniq, inverse = np.unique(seeds, return_inverse=True)
            t0 = clock.now
            sub = self.sampler.sample(uniq, rank, rng, phase="serve_sample")
            t1 = clock.now
            feats = self.store.gather_features(
                sub.input_nodes, rank, phase="serve_gather"
            )
            t2 = clock.now
            self._last_exec = {
                "sample": t1 - t0, "gather": t2 - t1, "infer": 0.0,
                "rows": int(uniq.shape[0]),
                "input_nodes": int(sub.input_nodes.shape[0]),
            }
            if self.model is not None:
                logits = self.model(sub, feats)
                clock.advance(
                    self.model.estimate_inference_time(sub),
                    phase="serve_infer", category="serve",
                    args={"seeds": int(uniq.shape[0]),
                          "input_nodes": int(sub.input_nodes.shape[0])},
                )
                self._last_exec["infer"] = clock.now - t2
                return logits.argmax(axis=-1)[inverse]
            return None
        t0 = clock.now
        self.store.gather_features(seeds, rank, phase="serve_gather")
        self._last_exec = {
            "sample": 0.0, "gather": clock.now - t0, "infer": 0.0,
            "rows": int(seeds.shape[0]), "input_nodes": int(seeds.shape[0]),
        }
        return None

    # -- analysis helpers (opt-in; never touch a clock) --------------------------

    def _config_dict(self) -> dict:
        """The engine configuration block of the :class:`ServeReport`."""
        return {
            "mode": "model" if self.model is not None else "embedding",
            "model": self.model.module_name if self.model else None,
            "fanouts": list(self.fanouts) if self.fanouts else None,
            "max_batch_size": self.batcher.max_batch_size,
            "max_wait_us": self.batcher.max_wait_us,
            "routing": self.routing,
            "replicas": list(self.replicas),
            "cache_enabled": self.store.feature_cache is not None,
            "feature_location": self.store.feature_location,
        }


def _latency_blame(latencies: np.ndarray, stages: dict) -> dict:
    """Decompose mean and p99-tail latency into serving stages.

    ``stages`` maps stage name -> per-request seconds (queue_wait / sample /
    gather / infer / other); every request in a batch shares the batch's
    service-stage times but owns its queueing delay.  The ``p99_tail`` block
    answers the SLO question directly: *which stage owns the tail* — the
    batcher's deadline (queue_wait), sampling, the DSM gather, or the
    forward pass.
    """
    lat = np.asarray(latencies, dtype=np.float64)
    p99 = float(np.percentile(lat, 99.0))
    names = sorted(stages)

    def block(mask: np.ndarray) -> dict:
        mean_lat = float(lat[mask].mean()) if mask.any() else 0.0
        seconds = {
            s: (float(stages[s][mask].mean()) if mask.any() else 0.0)
            for s in names
        }
        fraction = {
            s: (seconds[s] / mean_lat if mean_lat > 0 else 0.0)
            for s in names
        }
        worst = max(names, key=lambda s: seconds[s])
        return {
            "requests": int(mask.sum()),
            "mean_latency": mean_lat,
            "seconds": seconds,
            "fraction": fraction,
            "worst_stage": worst,
        }

    return {
        "p99_latency": p99,
        "all": block(np.ones(lat.size, dtype=bool)),
        "p99_tail": block(lat >= p99),
    }


def _serve_timeseries(
    t0: float,
    duration: float,
    abs_arrival: np.ndarray,
    completion_at: np.ndarray,
    latencies: np.ndarray,
    batch_rows: list,
    num_windows: int = 20,
) -> dict:
    """Rolling-window QPS / queue-depth / latency series over a serve run.

    Windows tile ``[t0, t0 + duration]``; per window the series reports
    offered load (arrivals), completed throughput (QPS), the max batcher
    queue depth observed at a dispatch, and the mean/max latency of the
    requests that completed in the window.  Times in the output are offsets
    from serve start, so same-seed runs emit byte-identical series.  This is
    the signal ROADMAP item 4's replica autoscaler consumes.
    """
    if duration <= 0 or abs_arrival.size == 0:
        num_windows = 1
        duration = max(duration, 0.0)
    width = duration / num_windows if duration > 0 else 0.0
    edges = t0 + duration * np.arange(1, num_windows + 1) / num_windows
    # half-open (prev, edge] windows; clip the first to include t0 exactly
    arr_bin = np.clip(
        np.searchsorted(edges, abs_arrival, side="left"), 0, num_windows - 1
    )
    done_bin = np.clip(
        np.searchsorted(edges, completion_at, side="left"), 0, num_windows - 1
    )
    windows = []
    for k in range(num_windows):
        done_mask = done_bin == k
        n_done = int(done_mask.sum())
        lat_k = latencies[done_mask]
        depths = [
            row["queue_depth"] for row in batch_rows
            if (k == 0 or row["dispatch"] > edges[k - 1])
            and row["dispatch"] <= edges[k]
        ]
        windows.append({
            "t_end": float(edges[k] - t0),
            "arrivals": int((arr_bin == k).sum()),
            "completed": n_done,
            "qps": (n_done / width) if width > 0 else 0.0,
            "queue_depth_max": max(depths) if depths else None,
            "latency_mean": float(lat_k.mean()) if n_done else None,
            "latency_max": float(lat_k.max()) if n_done else None,
        })
    return {"window_seconds": width, "windows": windows}
