"""Ablation benches: each WholeGraph design choice vs its alternative.

Covers the DESIGN.md ablation row: hash-table vs sort-based AppendUnique
(§III-C2), duplicate-count atomic elision in the g-SpMM backward (§III-C4),
and GPUDirect-P2P vs Unified-Memory storage (§II-B / Table I).
"""

from repro.experiments import ablations
from benchmarks.conftest import run_once


def test_ablations(benchmark, emit):
    results = run_once(benchmark, ablations.run, num_nodes=20_000)
    emit("ablations", ablations.report(results))
    ablations.check_shape(results)
