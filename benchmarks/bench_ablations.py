"""Ablation benches: each WholeGraph design choice vs its alternative.

Covers the DESIGN.md ablation row: hash-table vs sort-based AppendUnique
(§III-C2), duplicate-count atomic elision in the g-SpMM backward (§III-C4),
GPUDirect-P2P vs Unified-Memory storage (§II-B / Table I), the hot-row
feature cache, and the pipelined-prefetch iteration schedule — plus the
cache-ratio sweep appended to the same report.
"""

from benchmarks.conftest import run_once
from repro.experiments import ablations


def test_ablations(benchmark, emit):
    results = run_once(benchmark, ablations.run, num_nodes=20_000)
    sweep = ablations.cache_sweep(num_nodes=20_000)
    tiers = ablations.tier_hit_ratio_sweep(num_nodes=20_000, iterations=4)
    emit(
        "ablations",
        "\n\n".join([
            ablations.report(results),
            ablations.sweep_report(sweep),
            ablations.tier_sweep_report(tiers),
        ]),
    )
    ablations.check_shape(results)
    # the tier hit ratio climbs with either knob, and more bytes above
    # the disk tier never makes the gather slower
    by_key = {
        (r["cache_ratio"], r["host_pinned_fraction"]): r for r in tiers
    }
    for (ratio, frac), row in by_key.items():
        assert 0.0 <= row["tier_hit_ratio"] <= 1.0
        bigger_host = by_key.get((ratio, 0.75))
        if bigger_host is not None and frac < 0.75:
            assert bigger_host["tier_hit_ratio"] >= row["tier_hit_ratio"]
            assert bigger_host["gather_time"] <= row["gather_time"] * 1.001
        bigger_cache = by_key.get((0.1, frac))
        if bigger_cache is not None and ratio < 0.1:
            assert bigger_cache["tier_hit_ratio"] >= row["tier_hit_ratio"]
