"""Ablation benches: each WholeGraph design choice vs its alternative.

Covers the DESIGN.md ablation row: hash-table vs sort-based AppendUnique
(§III-C2), duplicate-count atomic elision in the g-SpMM backward (§III-C4),
GPUDirect-P2P vs Unified-Memory storage (§II-B / Table I), the hot-row
feature cache, and the pipelined-prefetch iteration schedule — plus the
cache-ratio sweep appended to the same report.
"""

from benchmarks.conftest import run_once
from repro.experiments import ablations


def test_ablations(benchmark, emit):
    results = run_once(benchmark, ablations.run, num_nodes=20_000)
    sweep = ablations.cache_sweep(num_nodes=20_000)
    emit(
        "ablations",
        ablations.report(results) + "\n\n" + ablations.sweep_report(sweep),
    )
    ablations.check_shape(results)
