"""Online-serving frontier: latency vs throughput across batching knobs.

Sweeps max-batch-size x arrival-rate over a single serving replica (so the
saturation point is visible without 8x the load) and prints the
latency/throughput frontier: sustained QPS, p50/p99 latency and mean batch
occupancy per cell, plus a cache-on vs cache-off column at equal offered
load.  The acceptance shape mirrors classic serving systems: p99 rises with
offered load (queueing), larger batch caps buy throughput at the cost of
low-load latency, and the hot-row feature cache strictly cuts gather time —
and therefore latency — at equal QPS.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.graph import MultiGpuGraphStore, load_dataset
from repro.hardware import SimNode
from repro.serve import (
    FrozenModel,
    InferenceEngine,
    MicroBatcher,
    synthesize_requests,
)
from repro.telemetry.metrics import MetricsRegistry, set_registry
from repro.train.trainer import WholeGraphTrainer
from repro.utils.rng import spawn_rng

FANOUTS = [8, 8]
BATCH_SIZES = (8, 32)
RATES = (2e5, 1e6, 4e6)
NUM_REQUESTS = 600
MAX_WAIT_US = 50.0


def _serve_cell(dataset, frozen, *, rate, max_batch_size, cache_ratio):
    """One frontier cell: fresh store + clean clocks, one serving run."""
    prev = set_registry(MetricsRegistry())
    try:
        store = MultiGpuGraphStore(
            SimNode(), dataset, seed=0, cache_ratio=cache_ratio
        )
        engine = InferenceEngine(
            store,
            model=frozen,
            fanouts=FANOUTS,
            batcher=MicroBatcher(max_batch_size, MAX_WAIT_US),
            replicas=[0],
        )
        reqs = synthesize_requests(
            NUM_REQUESTS, rate_qps=rate, node_pool=store.test_nodes,
            rng=spawn_rng(11, "bench-serve"),
        )
        report = engine.serve(reqs, seed=5).report
    finally:
        set_registry(prev)
    return {
        "rate": rate,
        "max_batch_size": max_batch_size,
        "cache_ratio": cache_ratio,
        "qps": report.qps,
        "p50": report.latency["p50"],
        "p99": report.latency["p99"],
        "mean_latency": report.latency["mean"],
        "occupancy": report.batch_occupancy["mean"],
        "gather_time": report.phase_totals["serve_gather"],
    }


def serve_frontier():
    """Train once, then sweep the batching/arrival grid."""
    dataset = load_dataset(
        "ogbn-products", num_nodes=4000, seed=7, feature_dim=128,
        num_classes=8,
    )
    prev = set_registry(MetricsRegistry())
    try:
        store = MultiGpuGraphStore(SimNode(), dataset, seed=0)
        trainer = WholeGraphTrainer(
            store, "sage", fanouts=FANOUTS, hidden=32, num_layers=2,
            seed=3, batch_size=256,
        )
        trainer.train_epoch()
    finally:
        set_registry(prev)
    frozen = FrozenModel(trainer.model)

    rows = [
        _serve_cell(dataset, frozen, rate=rate, max_batch_size=bs,
                    cache_ratio=0.1)
        for bs in BATCH_SIZES
        for rate in RATES
    ]
    # cache ablation: on vs off at one saturating offered load
    ablation = [
        _serve_cell(dataset, frozen, rate=1e6, max_batch_size=32,
                    cache_ratio=cr)
        for cr in (0.0, 0.1)
    ]
    return rows, ablation


def frontier_report(rows, ablation) -> str:
    lines = [
        "online serving frontier (1 replica, max_wait=50us, 600 requests)",
        f"{'B':>4} {'offered':>10} {'qps':>10} {'p50 us':>9} "
        f"{'p99 us':>9} {'occ':>6}",
    ]
    for r in rows:
        lines.append(
            f"{r['max_batch_size']:>4} {r['rate']:>10.0f} {r['qps']:>10.0f} "
            f"{r['p50'] * 1e6:>9.1f} {r['p99'] * 1e6:>9.1f} "
            f"{r['occupancy']:>6.1f}"
        )
    lines.append("cache ablation @ offered 1e6 qps, B=32:")
    for r in ablation:
        lines.append(
            f"  cache={r['cache_ratio']:<4} p99={r['p99'] * 1e6:8.1f}us "
            f"mean={r['mean_latency'] * 1e6:8.1f}us "
            f"gather={r['gather_time'] * 1e3:7.3f}ms"
        )
    return "\n".join(lines)


def test_serve_qps_frontier(benchmark, emit):
    rows, ablation = run_once(benchmark, serve_frontier)
    emit("serve_qps_frontier", frontier_report(rows, ablation))

    # p99 rises with offered load at every batch cap (queueing dominates
    # once the replica saturates)
    for bs in BATCH_SIZES:
        p99s = [r["p99"] for r in rows if r["max_batch_size"] == bs]
        assert p99s == sorted(p99s), (bs, p99s)
        assert p99s[-1] > 2 * p99s[0], (bs, p99s)

    # a larger batch cap sustains more throughput at the top offered load
    top = {r["max_batch_size"]: r for r in rows if r["rate"] == RATES[-1]}
    assert top[32]["qps"] > top[8]["qps"]

    # cache-enabled serving beats cache-off at equal offered QPS
    off, on = (
        next(r for r in ablation if r["cache_ratio"] == cr)
        for cr in (0.0, 0.1)
    )
    assert np.isclose(on["qps"], off["qps"], rtol=0.05)
    assert on["gather_time"] < off["gather_time"]
    assert on["mean_latency"] <= off["mean_latency"]
