"""Regenerates paper Table V: epoch times and speedups (the headline).

Full sweep: 4 datasets x 3 models x 3 frameworks.  Epoch times are
extrapolated to the full-scale datasets from per-iteration measurements
(see DESIGN.md §1).
"""

from repro.experiments import table5_epoch_time
from benchmarks.conftest import run_once


def test_table5_epoch_time(benchmark, emit):
    rows = run_once(benchmark, table5_epoch_time.run,
                    num_nodes=30_000, iterations=2)
    emit("table5_epoch_time", table5_epoch_time.report(rows))
    table5_epoch_time.check_shape(rows)
