"""DDP gradient-sync micro-benchmark: flat vs bucketed + overlapped.

Two measurements per run:

- **host wall-clock** — the Python-side bookkeeping cost of one
  ``sync_gradients`` call on 8 replicas of the Table-5 GraphSage model:
  the legacy flat path (per-step ``np.concatenate`` + scatter-back) versus
  the bucketed path (preallocated flat buffers + per-parameter views);
- **simulated exposed comm** — the critical-path all-reduce time per
  training step under the flat serial schedule versus the bucketed
  backward-overlapped schedule, plus the bucket-capacity sweep and the
  Fig. 13-style multi-machine-node scaling rows.

The simulated numbers (deterministic) are written to
``results/ddp_overlap.json`` in the ``compare_runs.py`` manifest shape;
CI diffs that file against the committed
``results/ddp_overlap_baseline.json`` and fails on exposed-comm
regressions.  Wall-clock numbers are reported but never gated.
"""

import json
import statistics
import time

import numpy as np

from benchmarks.conftest import RESULTS_DIR, run_once
from repro.dsm.comm import Communicator
from repro.experiments import ablations
from repro.hardware import SimNode
from repro.nn import build_model
from repro.telemetry.report import format_table
from repro.train.ddp import DistributedDataParallel


def _make_ddp(**ddp_kw):
    node = SimNode()
    replicas = [
        build_model("graphsage", 128, 172, np.random.default_rng(r),
                    hidden=256, num_layers=3)
        for r in range(node.num_gpus)
    ]
    return DistributedDataParallel(replicas, Communicator(node), **ddp_kw)


def _fill_grads(ddp, seed=0):
    rng = np.random.default_rng(seed)
    for m in ddp.replicas:
        for p in m.parameters():
            p.grad = rng.standard_normal(p.data.shape).astype(np.float32)


def _wallclock_per_sync(sync_fn, ddp, repeats=20):
    """Median host seconds of one gradient synchronisation."""
    times = []
    for i in range(repeats):
        _fill_grads(ddp, seed=i)
        t0 = time.perf_counter()
        sync_fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def _run_all():
    # wall-clock: bucketed (preallocated views) vs flat (concatenate)
    ddp = _make_ddp(bucket_cap_mb=None, overlap_grad_sync=True)
    wall_bucketed = _wallclock_per_sync(
        lambda: ddp.sync_gradients(), ddp
    )
    wall_flat = _wallclock_per_sync(
        lambda: ddp.sync_gradients_flat(), ddp
    )
    # simulated: exposed comm per step, sweep, multi-node scaling
    sync = ablations.grad_sync_ablation(num_nodes=20_000)
    sweep = ablations.bucket_cap_sweep(num_nodes=20_000)
    scaling = ablations.overlap_scaling_ablation(node_counts=(1, 2, 4))
    return ddp, wall_flat, wall_bucketed, sync, sweep, scaling


def test_ddp_overlap(benchmark, emit):
    ddp, wall_flat, wall_bucketed, sync, sweep, scaling = run_once(
        benchmark, _run_all
    )

    overlapped = {r["bucket_cap_mb"]: r for r in sweep}
    lines = [
        format_table(
            ["sync path", "wall-clock / sync (us)", "sim exposed / step (us)"],
            [
                ["flat serial", wall_flat * 1e6, sync.baseline_time * 1e6],
                [f"bucketed x{ddp.num_buckets} + overlap",
                 wall_bucketed * 1e6, sync.optimized_time * 1e6],
            ],
            title="DDP gradient synchronisation (Table-5 GraphSage, 8 GPUs)",
        ),
        f"exposed-comm reduction: {100 * (1 - 1 / sync.speedup):.1f}%",
        "",
        ablations.bucket_sweep_report(sweep),
        "",
        ablations.scaling_report(scaling),
    ]
    emit("ddp_overlap", "\n".join(lines))

    # the compare_runs.py gate: simulated (deterministic) seconds only
    manifest = {
        "name": "ddp_overlap",
        "phase_totals": {
            "grad_sync_flat_exposed": sync.baseline_time,
            "grad_sync_overlap_exposed": sync.optimized_time,
            "grad_sync_total_comm": overlapped[0.25]["total_comm"],
            "cluster2_exposed_overlap": scaling[1]["exposed_overlap"],
            "cluster2_exposed_flat": scaling[1]["exposed_flat"],
        },
        "notes": {
            "wallclock_flat_us": wall_flat * 1e6,
            "wallclock_bucketed_us": wall_bucketed * 1e6,
            "buckets": ddp.num_buckets,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ddp_overlap.json").write_text(
        json.dumps(manifest, indent=2) + "\n"
    )

    # paper-shape constraints
    assert ddp.num_buckets > 1
    assert sync.speedup >= 1.0 / 0.7, "overlap must cut exposed comm >= 30%"
    # preallocated buckets must not cost more host time than concatenate
    assert wall_bucketed < wall_flat * 2.0
    # flat (cap 0) serializes everything after backward
    flat_row = overlapped[0]
    assert flat_row["exposed"] == flat_row["total_comm"]
    # overlap win grows with machine-node count (hierarchical comm grows)
    assert scaling[-1]["exposed_flat"] > scaling[-1]["exposed_overlap"]
