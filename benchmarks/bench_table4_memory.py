"""Regenerates paper Table IV: per-GPU memory usage for ogbn-papers100M."""

from repro.experiments import table4_memory
from benchmarks.conftest import run_once


def test_table4_memory(benchmark, emit):
    rows = run_once(benchmark, table4_memory.run)
    emit("table4_memory", table4_memory.report(rows))
    table4_memory.check_shape(rows)
