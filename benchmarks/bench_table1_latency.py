"""Regenerates paper Table I: UM vs GPUDirect P2P pointer-chase latency."""

from repro.experiments import table1_latency
from benchmarks.conftest import run_once


def test_table1_latency(benchmark, emit):
    rows = run_once(benchmark, table1_latency.run, num_accesses=20_000)
    emit("table1_latency", table1_latency.report(rows))
    table1_latency.check_shape(rows)
