"""Out-of-core streaming loader benchmark: prefetch hiding on tiny HBM.

The papers100M-scale demo the storage tier exists for: a feature table
*larger than aggregate simulated HBM* (the GPUs are shrunk to a sliver of
an A100 so the ratio matches the next scale step up from the paper's
testbed), spilled warm-host/cold-disk by degree, trained end-to-end

- synchronously (``streaming=False``): every gather pays the full
  zero-copy PCIe + disk-staging latency on the compute streams;
- with the streaming loader (``streaming=True``): fetches ride the
  dedicated host stream ``prefetch_depth`` batches ahead, and only the
  exposed tail lands on the GPUs.

The headline gate: the prefetching loader must hide **>= 50%** of
host-transfer time, and the streaming epoch must beat the synchronous one.
Results go to ``results/streaming.json`` (compare_runs.py manifest shape —
CI diffs it against the committed ``streaming_baseline.json``) and the
streaming run's ``RunReport`` to ``results/streaming_run.json``, which CI
feeds to ``python -m repro.telemetry.analysis --max-exposed-host-frac``.
"""

import json
from dataclasses import replace

from benchmarks.conftest import RESULTS_DIR, run_once
from repro.graph import MultiGpuGraphStore, load_dataset
from repro.hardware import SimNode
from repro.hardware.spec import dgx_a100
from repro.telemetry import metrics
from repro.telemetry.report import format_table
from repro.train import WholeGraphTrainer

NUM_NODES = 30_000
#: HBM sliver per GPU — 8 GPUs x 1 MB leaves the ~15 MB feature table
#: (30k rows x 128 floats) with nowhere to live but the host/disk tiers
TINY_HBM = 1 << 20

_DATASET = None


def _dataset():
    global _DATASET
    if _DATASET is None:
        _DATASET = load_dataset("ogbn-papers100M", num_nodes=NUM_NODES)
    return _DATASET


def _tiny_hbm_node() -> SimNode:
    spec = dgx_a100()
    return SimNode(replace(spec, gpu=replace(spec.gpu,
                                             memory_capacity=TINY_HBM)))


def _train_once(*, streaming, prefetch_depth=2):
    """One epoch on the tiny-HBM node; returns (stats, ledger, report)."""
    prev = metrics.get_registry()
    metrics.set_registry(metrics.MetricsRegistry())
    try:
        node = _tiny_hbm_node()
        store = MultiGpuGraphStore(
            node, _dataset(), seed=0, tier="tiered",
            host_pinned_fraction=0.5,
        )
        trainer = WholeGraphTrainer(
            store, "graphsage", seed=3, batch_size=32, fanouts=[10, 10],
            hidden=512, num_layers=2, lr=0.003,
            streaming=streaming, prefetch_depth=prefetch_depth,
        )
        stats = trainer.train_epoch()
        reg = metrics.get_registry()
        ledger = {
            "total": reg.total("host_fetch_seconds_total"),
            "exposed": reg.total("host_fetch_exposed_seconds_total"),
            "hidden": reg.total("host_fetch_hidden_seconds_total"),
        }
        # snapshot the report while the run's registry is still active
        return stats, ledger, trainer, trainer.run_report()
    finally:
        metrics.set_registry(prev)


def _run_all():
    seq_stats, _, _, _ = _train_once(streaming=False)
    stm_stats, ledger, trainer, report = _train_once(streaming=True)
    sweep = [
        (d, _train_once(streaming=True, prefetch_depth=d)[0].epoch_time)
        for d in (1, 2, 4)
    ]
    return seq_stats, stm_stats, ledger, trainer, report, sweep


def test_streaming_loader(benchmark, emit):
    seq_stats, stm_stats, ledger, trainer, report, sweep = run_once(
        benchmark, _run_all
    )
    store = trainer.store
    feature_bytes = store.feature_tensor.total_bytes
    aggregate_hbm = trainer.node.num_gpus * TINY_HBM
    hidden_frac = ledger["hidden"] / ledger["total"]
    speedup = seq_stats.epoch_time / stm_stats.epoch_time

    rows = [
        ["synchronous tier", seq_stats.epoch_time * 1e3, "-"],
        ["streaming (depth 2)", stm_stats.epoch_time * 1e3,
         f"{speedup:.2f}x"],
    ]
    lines = [
        format_table(
            ["schedule", "epoch time (ms)", "speedup"],
            rows,
            title=(
                f"out-of-core epoch: {feature_bytes / 2**20:.1f} MB "
                f"features vs {aggregate_hbm / 2**20:.0f} MB aggregate HBM"
            ),
        ),
        format_table(
            ["phase", "seconds"],
            sorted(stm_stats.times.as_dict().items()),
            title="streaming epoch breakdown",
        ),
        (
            f"host transfers: {ledger['total'] * 1e3:.2f} ms total, "
            f"{ledger['hidden'] * 1e3:.2f} ms hidden "
            f"({100 * hidden_frac:.1f}%), "
            f"{ledger['exposed'] * 1e3:.2f} ms exposed"
        ),
        format_table(
            ["prefetch_depth", "epoch time (ms)"],
            [[d, t * 1e3] for d, t in sweep],
            title="prefetch-depth sweep",
        ),
    ]
    emit("streaming_loader", "\n\n".join(lines))

    manifest = {
        "name": "streaming_loader",
        "phase_totals": {
            "epoch_sequential": seq_stats.epoch_time,
            "epoch_streaming": stm_stats.epoch_time,
            "host_fetch_total": ledger["total"],
            "host_fetch_exposed": ledger["exposed"],
        },
        "notes": {
            "feature_mb": feature_bytes / 2**20,
            "aggregate_hbm_mb": aggregate_hbm / 2**20,
            "hidden_fraction": hidden_frac,
            "speedup": speedup,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "streaming.json").write_text(
        json.dumps(manifest, indent=2) + "\n"
    )
    report.save(RESULTS_DIR / "streaming_run.json")

    # the tentpole's contract
    assert feature_bytes > aggregate_hbm, "demo must exceed aggregate HBM"
    assert hidden_frac >= 0.5, "prefetch must hide >= 50% of transfers"
    assert stm_stats.epoch_time < seq_stats.epoch_time
    # the ledger decomposes exactly: total == exposed + hidden
    assert abs(
        ledger["total"] - (ledger["exposed"] + ledger["hidden"])
    ) <= 1e-9 * max(ledger["total"], 1.0)
    # deeper prefetch never slows the epoch down
    times = [t for _, t in sweep]
    assert times[-1] <= times[0] * 1.001
