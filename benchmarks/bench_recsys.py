"""Recsys workload benchmark: sparse embedding training + top-k serving.

The embedding-table scenario of the paper's recsys discussion, end to end:
link-prediction training over a bipartite rating graph with the trainable
``WholeEmbedding`` sharded across the DSM (forward gathers and backward
row-grad pushes both priced through the gather cost model), then the online
recommendation path served over the frozen encoder.

Beyond the timing rows, the bench enforces the telemetry contract the
manifest is built from: every ``embed_grad`` span on the comm-stream lane
must reconcile — rows and bytes — with the ``embedding_rows_touched_total``
/ ``embedding_link_bytes_total`` ledgers and the table's own grad stats.
Results go to ``results/recsys.json`` (compare_runs.py manifest shape — CI
diffs it against the committed ``recsys_baseline.json``).
"""

import json

from benchmarks.conftest import RESULTS_DIR, run_once
from repro.graph import MultiGpuGraphStore, load_bipartite_dataset
from repro.hardware import SimNode
from repro.serve import FrozenModel, RecsysEngine, synthesize_requests
from repro.telemetry import metrics
from repro.telemetry.report import format_table
from repro.train import WholeGraphTrainer
from repro.utils.rng import spawn_rng

NUM_USERS = 600
NUM_ITEMS = 250
EPOCHS = 6
NUM_REQUESTS = 300


def _run_all():
    prev = metrics.get_registry()
    metrics.set_registry(metrics.MetricsRegistry())
    try:
        ds = load_bipartite_dataset(
            num_users=NUM_USERS, num_items=NUM_ITEMS, seed=0
        )
        store = MultiGpuGraphStore(SimNode(), ds, seed=0)
        trainer = WholeGraphTrainer(
            store, "sage", seed=0, batch_size=32, task="linkpred",
            num_pairs=256, hidden=32, num_layers=2, lr=1e-2,
        )
        epochs = [trainer.train_epoch() for _ in range(EPOCHS)]
        auc = trainer.evaluate_linkpred(num_pairs=2000)

        reg = metrics.get_registry()
        lane = trainer.node.gpu_clock[0].device + "/nccl"
        spans = [
            s for s in trainer.node.timeline.spans
            if s.device == lane and s.phase == "embed_grad"
        ]
        grad_stats = dict(trainer.embedding.grad_stats)
        ledger = {
            "rows_touched": reg.total("embedding_rows_touched_total"),
            "link_bytes": reg.total("embedding_link_bytes_total"),
            "grad_seconds": reg.total("embedding_grad_seconds_total"),
            "span_rows": sum(s.args["rows"] for s in spans),
            "span_bytes": sum(s.args["nbytes"] for s in spans),
            "gather_bytes": trainer.embedding.table.stats["gather_bytes"],
        }

        engine = RecsysEngine(
            store, FrozenModel(trainer.model), trainer.embedding,
            ds.item_nodes, top_k=10, score_scale=trainer._score_scale,
        )
        requests = synthesize_requests(
            NUM_REQUESTS, 50_000.0, ds.user_nodes,
            spawn_rng(0, "bench-recsys"),
        )
        serve = engine.serve(requests, seed=0).report
        return epochs, auc, grad_stats, ledger, serve
    finally:
        metrics.set_registry(prev)


def test_recsys(benchmark, emit):
    epochs, auc, grad_stats, ledger, serve = run_once(benchmark, _run_all)

    train_time = sum(s.epoch_time for s in epochs)
    lines = [
        format_table(
            ["epoch", "loss", "epoch time (ms)"],
            [[i, f"{s.mean_loss:.4f}", s.epoch_time * 1e3]
             for i, s in enumerate(epochs)],
            title=(
                f"recsys link prediction: {NUM_USERS} users x "
                f"{NUM_ITEMS} items (held-out AUC {auc:.4f})"
            ),
        ),
        (
            f"sparse updates: {grad_stats['rows_touched']} rows touched "
            f"over {grad_stats['steps']} steps, "
            f"{grad_stats['grad_bytes'] / 2**10:.1f} KiB of row grads on "
            f"the comm lane ({ledger['grad_seconds'] * 1e6:.1f} us)"
        ),
        format_table(
            ["stage", "seconds"],
            sorted(serve.phase_totals.items()),
            title=(
                f"top-10 serving: p99 {serve.latency['p99'] * 1e6:.1f} us "
                f"at {serve.qps:.0f} qps"
            ),
        ),
    ]
    emit("recsys", "\n\n".join(lines))

    manifest = {
        "name": "recsys",
        "phase_totals": {
            "train_total": train_time,
            "embed_grad": ledger["grad_seconds"],
            **{f"serve_{k.removeprefix('serve_')}": v
               for k, v in serve.phase_totals.items()},
        },
        "notes": {
            "auc": auc,
            "rows_touched": grad_stats["rows_touched"],
            "serve_p99": serve.latency["p99"],
            "serve_qps": serve.qps,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "recsys.json").write_text(
        json.dumps(manifest, indent=2) + "\n"
    )

    # quality floor: the planted taste communities are learned
    assert auc >= 0.85, f"AUC {auc:.4f} below floor"
    # sparsity: each step touches a strict subset of the table
    table_rows = NUM_USERS + NUM_ITEMS
    assert 0 < grad_stats["rows_touched"] < grad_stats["steps"] * table_rows
    # the comm-lane spans reconcile with the metric ledgers exactly
    assert ledger["span_rows"] == ledger["rows_touched"]
    assert ledger["span_rows"] == grad_stats["rows_touched"]
    assert ledger["span_bytes"] == grad_stats["grad_bytes"]
    assert ledger["link_bytes"] == (
        ledger["gather_bytes"] + grad_stats["grad_bytes"]
    )
    assert ledger["grad_seconds"] > 0
    assert serve.qps > 0 and serve.latency["p99"] > 0
