"""Microbenchmarks of the core WholeGraph ops (host wall-clock).

Unlike the table/figure benches these measure *this implementation's*
throughput (useful for tracking regressions in the vectorised kernels),
not the simulated DGX times.
"""

import numpy as np
import pytest

from repro.ops.append_unique import append_unique
from repro.ops.sampling import batch_sample_without_replacement
from repro.ops.segment import scatter_add_rows, segment_sum
from repro.ops.spmm import gspmm_backward_features, gspmm_sum

RNG = np.random.default_rng(0)


def test_bench_parallel_sampler(benchmark):
    counts = RNG.integers(30, 200, size=20_000)
    benchmark(
        batch_sample_without_replacement, counts, 30,
        np.random.default_rng(1),
    )


def test_bench_append_unique(benchmark):
    targets = RNG.choice(1_000_000, size=5_000, replace=False)
    neighbors = RNG.integers(0, 1_000_000, size=150_000)
    benchmark(append_unique, targets, neighbors)


def test_bench_segment_sum(benchmark):
    sizes = RNG.integers(0, 60, size=20_000)
    indptr = np.concatenate(([0], np.cumsum(sizes)))
    values = RNG.standard_normal((int(indptr[-1]), 64)).astype(np.float32)
    benchmark(segment_sum, values, indptr)


def test_bench_scatter_add(benchmark):
    idx = RNG.integers(0, 50_000, size=500_000)
    vals = RNG.standard_normal((500_000, 32)).astype(np.float32)
    benchmark(scatter_add_rows, 50_000, idx, vals)


def test_bench_gspmm_forward(benchmark):
    sizes = RNG.integers(1, 40, size=20_000)
    indptr = np.concatenate(([0], np.cumsum(sizes)))
    indices = RNG.integers(0, 60_000, size=int(indptr[-1]))
    x = RNG.standard_normal((60_000, 128)).astype(np.float32)
    benchmark(gspmm_sum, indptr, indices, x)


def test_bench_gspmm_backward(benchmark):
    sizes = RNG.integers(1, 40, size=20_000)
    indptr = np.concatenate(([0], np.cumsum(sizes)))
    indices = RNG.integers(0, 60_000, size=int(indptr[-1]))
    g = RNG.standard_normal((20_000, 128)).astype(np.float32)
    benchmark(gspmm_backward_features, indptr, indices, g, 60_000)
