"""Diff two RunReport manifests and flag perf regressions.

The seed of a perf-CI loop: a baseline manifest (from the last good commit)
and a candidate manifest (from this build) are compared phase by phase; any
phase total — or the overall epoch time — that grew past the tolerance makes
the tool exit non-zero.

Usage::

    python benchmarks/compare_runs.py baseline.json candidate.json
    python benchmarks/compare_runs.py a.json b.json --tolerance 0.05

Only stdlib + the manifest JSON are needed; the tool never imports
``repro``, so it can run against manifests from any commit.
"""

from __future__ import annotations

import argparse
import json
import sys

#: default allowed relative growth before a value counts as a regression
DEFAULT_TOLERANCE = 0.10


def worst_regressor(baseline: dict, candidate: dict) -> dict | None:
    """Attribute the time delta to phases; name the worst regressor.

    A stdlib re-statement of
    ``repro.telemetry.analysis.diff.attribute_regression`` (this tool must
    run against manifests from any commit without importing ``repro``):
    each phase's positive delta is given its share of the summed positive
    delta, and the largest one wins.  Returns ``{"phase", "delta",
    "share"}`` or ``None`` when nothing grew.
    """
    base = {k: float(v) for k, v in (baseline.get("phase_totals") or {}).items()}
    cand = {k: float(v) for k, v in (candidate.get("phase_totals") or {}).items()}
    deltas = {
        k: cand.get(k, 0.0) - base.get(k, 0.0)
        for k in set(base) | set(cand)
    }
    pos_total = sum(d for d in deltas.values() if d > 0)
    if pos_total <= 0:
        return None
    phase, delta = max(deltas.items(), key=lambda kv: (kv[1], kv[0]))
    return {"phase": phase, "delta": delta, "share": delta / pos_total}


def _fmt_delta(old: float, new: float) -> str:
    pct = 100.0 * (new - old) / old if old else float("inf")
    return f"{old:.6g} -> {new:.6g} ({pct:+.1f}%)"


def compare_reports(
    baseline: dict, candidate: dict, tolerance: float = DEFAULT_TOLERANCE
) -> tuple[list[str], list[str]]:
    """Compare two manifest dicts; returns ``(regressions, notes)``.

    A *regression* is a phase total (or ``epoch_time``) in the candidate
    exceeding the baseline by more than ``tolerance`` (relative).  Phases
    present on only one side, and improvements, are reported as notes.
    """
    regressions: list[str] = []
    notes: list[str] = []
    if baseline.get("name") != candidate.get("name"):
        notes.append(
            f"comparing different runs: {baseline.get('name')!r} "
            f"vs {candidate.get('name')!r}"
        )

    base_phases = dict(baseline.get("phase_totals") or {})
    cand_phases = dict(candidate.get("phase_totals") or {})
    if baseline.get("epoch_time") is not None:
        base_phases["epoch_time"] = baseline["epoch_time"]
    if candidate.get("epoch_time") is not None:
        cand_phases["epoch_time"] = candidate["epoch_time"]

    for phase in sorted(base_phases):
        old = float(base_phases[phase])
        if phase not in cand_phases:
            notes.append(f"phase {phase!r} disappeared (was {old:.6g}s)")
            continue
        new = float(cand_phases[phase])
        if old <= 0:
            continue
        if new > old * (1.0 + tolerance):
            regressions.append(
                f"phase {phase!r} regressed: {_fmt_delta(old, new)} "
                f"exceeds {tolerance:.0%} tolerance"
            )
        elif new < old * (1.0 - tolerance):
            notes.append(f"phase {phase!r} improved: {_fmt_delta(old, new)}")
    for phase in sorted(set(cand_phases) - set(base_phases)):
        notes.append(
            f"new phase {phase!r} ({float(cand_phases[phase]):.6g}s)"
        )

    base_acc = baseline.get("accuracy")
    cand_acc = candidate.get("accuracy")
    if base_acc is not None and cand_acc is not None:
        if cand_acc < base_acc - tolerance:
            regressions.append(
                f"accuracy regressed: {base_acc:.4f} -> {cand_acc:.4f}"
            )
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff two RunReport JSON manifests; exit 1 on regression."
    )
    parser.add_argument("baseline", help="baseline manifest (JSON)")
    parser.add_argument("candidate", help="candidate manifest (JSON)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed relative growth (default: 0.10)")
    args = parser.parse_args(argv)

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.candidate) as f:
        candidate = json.load(f)

    regressions, notes = compare_reports(
        baseline, candidate, tolerance=args.tolerance
    )
    for note in notes:
        print(f"note: {note}")
    for regression in regressions:
        print(f"REGRESSION: {regression}")
    if regressions:
        worst = worst_regressor(baseline, candidate)
        blame = (
            f"; worst regressor: {worst['phase']!r} "
            f"(+{worst['delta']:.6g}s, {worst['share']:.0%} of the growth)"
            if worst else ""
        )
        print(f"{len(regressions)} regression(s) beyond "
              f"{args.tolerance:.0%} tolerance{blame}")
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
