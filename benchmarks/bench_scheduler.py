"""Scheduler-core and hot-path kernel benchmark.

Three measurements per run:

- **launch throughput** (micro) — host wall-clock of driving the
  :mod:`repro.sim` event loop through a ring of cross-stream dependent ops
  plus comm-lane records, reported as launches/second; the final simulated
  makespan of the synthetic program is deterministic and gated;
- **overlapped epoch** (simulated, deterministic) — a small pipelined
  ``WholeGraphTrainer`` epoch run entirely on the stream scheduler; its
  simulated epoch time and per-phase busy totals are exactly reproducible,
  so any drift means the scheduler's behaviour changed;
- **hot-path speedup** (macro) — one Table-5-scale GAT cell
  (``measure_framework``-shaped workload) timed twice in the same process:
  once with the pre-optimization ``segment_sum`` accumulator swapped back
  in, once with the shipped F-order kernel.  The optimized epoch must take
  at most 75% of the reference wall-clock (the >=25% reduction this pass
  claims).  Only the *ratio* is gated — both runs share the process, so the
  ratio is robust to machine speed; raw wall-clock goes in the notes.

The deterministic numbers and the ratios are written to
``results/scheduler.json`` in the ``compare_runs.py`` manifest shape; CI
diffs that file against the committed ``results/scheduler_baseline.json``.
"""

import json
import time

import numpy as np
import pytest

from benchmarks.conftest import RESULTS_DIR, run_once
from repro.experiments.common import get_dataset, measure_wholegraph
from repro.graph import MultiGpuGraphStore
from repro.graph.datasets import load_dataset
from repro.hardware import SimNode
from repro.telemetry.report import format_table
from repro.train import WholeGraphTrainer

# -- hot-path reference kernel ------------------------------------------------------

#: Table-5-scale cell for the macro comparison: large enough that the
#: per-edge GAT tensors dominate (the profiled regime where ``cumsum`` was
#: ~65% of epoch time), small enough for a CI job.
MACRO_KW = dict(num_nodes=15_000, iterations=1, batch_size=256)


def _reference_segment_sum(values, indptr):
    """The pre-optimization ``segment_sum`` accumulator (C-order zeros +
    ``np.cumsum`` into a slice) — kept here verbatim as the baseline the
    F-order kernel is measured against."""
    values = np.asarray(values)
    indptr = np.asarray(indptr, dtype=np.int64)
    n = indptr.shape[0] - 1
    if values.shape[0] == 0 or n == 0:
        return np.zeros((n,) + values.shape[1:], dtype=values.dtype)
    acc_dtype = np.float64 if values.dtype.kind == "f" else np.int64
    cs = np.zeros((values.shape[0] + 1,) + values.shape[1:], dtype=acc_dtype)
    np.cumsum(values, axis=0, dtype=acc_dtype, out=cs[1:])
    out = cs[indptr[1:]] - cs[indptr[:-1]]
    return out.astype(values.dtype, copy=False)


class _patched_segment_sum:
    """Swap the reference accumulator into every consumer module.

    ``repro.nn.functional`` resolves ``segment_sum`` through the module
    attribute, but ``repro.ops.spmm`` imported the name directly, so both
    bindings are replaced.
    """

    def __enter__(self):
        import repro.ops.segment as seg
        import repro.ops.spmm as spmm

        self._mods = (seg, spmm)
        self._orig = seg.segment_sum
        for mod in self._mods:
            mod.segment_sum = _reference_segment_sum

    def __exit__(self, *exc):
        for mod in self._mods:
            mod.segment_sum = self._orig


# -- the three measurements ---------------------------------------------------------


def _launch_storm(rounds: int = 4_000):
    """Micro: a ring of cross-stream dependent ops through the event loop.

    Per round, every GPU's compute stream launches one op depending on the
    previous rank's event (a software ring), and rank 0's comm lane records
    one retroactive span — the launch mix the overlap engines produce.
    Returns ``(launches, host_seconds, simulated_makespan)``.
    """
    node = SimNode()
    streams = node.streams
    compute = [streams.compute(r) for r in range(node.num_gpus)]
    lane = streams.comm(0)
    launches = 0
    t0 = time.perf_counter()
    prev = None
    for i in range(rounds):
        for rank, stream in enumerate(compute):
            deps = (prev,) if prev is not None else ()
            prev = stream.launch(1e-6, deps=deps, phase="train",
                                 category="compute")
            launches += 1
        lane.record(i * 1e-6, (i + 1) * 1e-6, phase="allreduce_bucket",
                    category="comm")
        launches += 1
    prev.wait()
    host = time.perf_counter() - t0
    makespan = max(c.clock.now for c in compute)
    return launches, host, makespan


def _overlap_epoch():
    """Deterministic simulated numbers from a fully scheduler-driven run."""
    ds = load_dataset("ogbn-products", num_nodes=3_000, seed=7,
                      feature_dim=16, num_classes=5)
    node = SimNode()
    store = MultiGpuGraphStore(node, ds, seed=0)
    trainer = WholeGraphTrainer(store, "graphsage", seed=0, batch_size=64,
                                fanouts=[4, 4], hidden=16, dropout=0.0,
                                overlap=True)
    node.reset_clocks()
    stats = trainer.train_epoch(max_iterations=8)
    phase_busy: dict[str, float] = {}
    for span in node.timeline.spans:
        if span.busy:
            phase_busy[span.phase] = (
                phase_busy.get(span.phase, 0.0) + span.duration
            )
    return stats, phase_busy


def _hotpath_cell():
    """One warm Table-5-scale GAT cell; returns host wall-clock seconds."""
    t0 = time.perf_counter()
    measure_wholegraph("ogbn-products", "gat", **MACRO_KW)
    return time.perf_counter() - t0


def _segment_sum_micro(repeats: int = 3):
    """Kernel-level check: F-order vs reference on a GAT-shaped operand."""
    rng = np.random.default_rng(0)
    values = rng.standard_normal((400_000, 8)).astype(np.float32)
    bounds = np.sort(rng.integers(0, values.shape[0] + 1, size=4_095))
    indptr = np.concatenate(([0], bounds, [values.shape[0]]))
    from repro.ops.segment import segment_sum

    def best(fn):
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn(values, indptr)
            times.append(time.perf_counter() - t0)
        return min(times)

    return best(segment_sum), best(_reference_segment_sum)


def _run_all():
    launches, storm_host, storm_makespan = _launch_storm()
    stats, phase_busy = _overlap_epoch()
    micro_opt, micro_ref = _segment_sum_micro()
    # macro: warm the dataset cache and the process with an optimized run,
    # then time reference vs optimized back to back in the same process
    get_dataset("ogbn-products", MACRO_KW["num_nodes"], 0)
    _hotpath_cell()
    with _patched_segment_sum():
        t_ref = _hotpath_cell()
    t_opt = _hotpath_cell()
    return (launches, storm_host, storm_makespan, stats, phase_busy,
            micro_opt, micro_ref, t_ref, t_opt)


def test_scheduler(benchmark, emit):
    (launches, storm_host, storm_makespan, stats, phase_busy,
     micro_opt, micro_ref, t_ref, t_opt) = run_once(benchmark, _run_all)

    frac = t_opt / t_ref
    micro_frac = micro_opt / micro_ref
    lines = [
        format_table(
            ["measurement", "value"],
            [
                ["event-loop launches/s", launches / storm_host],
                ["launch-storm sim makespan (s)", storm_makespan],
                ["overlap epoch sim time (s)", stats.epoch_time],
                ["segment_sum micro speedup", micro_ref / micro_opt],
                ["hot-path epoch, reference kernels (s)", t_ref],
                ["hot-path epoch, optimized kernels (s)", t_opt],
            ],
            title="Stream scheduler + vectorized hot path",
        ),
        f"hot-path wall-clock reduction: {100 * (1 - frac):.1f}% "
        f"(gate: >=25%)",
    ]
    emit("scheduler", "\n".join(lines))

    # compare_runs.py gate: deterministic sim values + in-process ratios
    manifest = {
        "name": "scheduler",
        "phase_totals": {
            "launch_storm_makespan": storm_makespan,
            "overlap_epoch_sim": stats.epoch_time,
            "overlap_sample_busy": phase_busy.get("sample", 0.0),
            "overlap_gather_busy": phase_busy.get("gather", 0.0),
            "overlap_train_busy": phase_busy.get("train", 0.0),
            "hotpath_optimized_frac": frac,
            "segment_sum_micro_frac": micro_frac,
        },
        "notes": {
            "launches_per_sec": launches / storm_host,
            "hotpath_reference_s": t_ref,
            "hotpath_optimized_s": t_opt,
            "macro_config": MACRO_KW,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "scheduler.json").write_text(
        json.dumps(manifest, indent=2) + "\n"
    )

    # paper-shape constraints
    assert t_opt <= 0.75 * t_ref, (
        f"hot-path pass must cut epoch wall-clock >=25% (got {frac:.1%})"
    )
    assert micro_opt < micro_ref, "F-order kernel must beat the reference"
    # the scheduler keeps the launch mix fast enough to stay invisible next
    # to the numpy work it orchestrates
    assert launches / storm_host > 10_000
    # the ring serializes every op, so the simulated makespan is exactly
    # the sum of all compute-op durations
    node_gpus = SimNode().num_gpus
    assert storm_makespan == pytest.approx(4_000 * node_gpus * 1e-6)
    assert stats.epoch_time > 0
