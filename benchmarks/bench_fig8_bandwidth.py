"""Regenerates paper Fig. 8: DSM random-read bandwidth vs segment size."""

from repro.experiments import fig8_bandwidth
from benchmarks.conftest import run_once


def test_fig8_bandwidth(benchmark, emit):
    pts = run_once(benchmark, fig8_bandwidth.run)
    emit("fig8_bandwidth", fig8_bandwidth.report(pts))
    fig8_bandwidth.check_shape(pts)
