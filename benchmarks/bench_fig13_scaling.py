"""Regenerates paper Fig. 13: multi-node scaling of WholeGraph."""

from repro.experiments import fig13_scaling
from benchmarks.conftest import run_once


def test_fig13_scaling(benchmark, emit):
    rows = run_once(benchmark, fig13_scaling.run,
                    num_nodes=20_000, iterations=2)
    emit("fig13_scaling", fig13_scaling.report(rows))
    fig13_scaling.check_shape(rows)
