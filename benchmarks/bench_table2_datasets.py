"""Regenerates paper Table II: evaluation dataset statistics."""

from repro.experiments import table2_datasets
from benchmarks.conftest import run_once


def test_table2_datasets(benchmark, emit):
    rows = run_once(benchmark, table2_datasets.run, num_nodes=20_000)
    emit("table2_datasets", table2_datasets.report(rows))
    table2_datasets.check_shape(rows)
