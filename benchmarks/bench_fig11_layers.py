"""Regenerates paper Fig. 11: WholeGraph data path + third-party layers."""

from repro.experiments import fig11_layers
from benchmarks.conftest import run_once


def test_fig11_layers(benchmark, emit):
    rows = run_once(benchmark, fig11_layers.run,
                    num_nodes=30_000, iterations=2)
    emit("fig11_layers", fig11_layers.report(rows))
    fig11_layers.check_shape(rows)
