"""Feature-cache sweep: hit rate and gather time vs per-rank cache size.

Regenerates the hot-row-cache ablation curve on the power-law ``uk_domain``
graph: the same sampled-frontier sequence replayed through the gather path
at every cache ratio, so the hit-rate/gather-time trend isolates the cache.
"""

from benchmarks.conftest import run_once
from repro.experiments import ablations


def test_cache_sweep(benchmark, emit):
    rows = run_once(benchmark, ablations.cache_sweep, num_nodes=20_000)
    emit("cache_sweep", ablations.sweep_report(rows))

    by_ratio = {r["cache_ratio"]: r for r in rows}
    # the acceptance shape: a 10% degree-ordered cache serves most of the
    # sampled frontier and pays less simulated gather time than no cache
    assert by_ratio[0.1]["hit_rate"] >= 0.5
    assert by_ratio[0.1]["gather_time"] < by_ratio[0.0]["gather_time"]
    # hit rate grows monotonically with capacity; a full cache never misses
    # after warm-up of the replayed frontier
    rates = [r["hit_rate"] for r in rows]
    assert rates == sorted(rates)
    assert by_ratio[1.0]["hit_rate"] > 0.99
