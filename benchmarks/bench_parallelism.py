"""Parallelism-plan crossover benchmark: where each mode wins.

Two deterministic sweeps over the simulated clocks:

- **depth sweep** — data-parallel vs GNNPipe-style pipeline parallelism
  at growing model depth.  Shallow models lose to the pipeline's
  per-micro-op launch overheads, activation transfers and fill/drain
  bubbles; deep models amortise them while data parallelism keeps paying
  a parameter-proportional all-reduce — the epoch-time ratio crosses 1
  as depth grows (GNNPipe's headline claim).
- **density sweep** — data-parallel mini-batch sampling vs CAGNET-style
  1.5D full-graph training at growing average degree.  On sparse graphs
  one partitioned full-graph pass moves less data than an epoch of
  sampled mini-batches (whose frontiers re-fetch the same neighborhoods
  batch after batch); on dense graphs sampling's fanout cap wins while
  the full-graph SpMM pays for every edge — the ratio crosses 1 as
  density grows (CAGNET's communication-avoidance regime).

All numbers are simulated and bit-reproducible; the manifest is written
to ``results/parallelism.json`` and CI diffs it against the committed
``results/parallelism_baseline.json`` via ``compare_runs.py``.
"""

import json

import numpy as np

from benchmarks.conftest import RESULTS_DIR, run_once
from repro.graph import MultiGpuGraphStore
from repro.graph.builder import from_edge_list
from repro.graph.datasets import SyntheticDataset, dataset_spec, load_dataset
from repro.graph.generators import (
    block_labels,
    class_features,
    homophilous_edges,
)
from repro.hardware import SimNode
from repro.hardware.spec import dgx_a100
from repro.telemetry import metrics
from repro.telemetry.report import format_table
from repro.train import WholeGraphTrainer
from repro.train.plans import CagnetFullGraphPlan, PipelineParallelPlan
from repro.utils.rng import spawn_rng

DEPTHS = (2, 4, 8)
DEGREES = (8, 32, 128)
MICRO_BATCHES = 4
NUM_GPUS = 4


def _isolated(fn):
    """Run ``fn`` against a fresh process metrics registry."""
    prev = metrics.set_registry(metrics.MetricsRegistry())
    try:
        return fn()
    finally:
        metrics.set_registry(prev)


# -- depth sweep: data-parallel vs pipeline ---------------------------------


def _depth_trainer(depth: int, plan=None) -> WholeGraphTrainer:
    ds = load_dataset("ogbn-products", num_nodes=3_000, seed=3,
                      feature_dim=64, num_classes=10)
    node = SimNode(dgx_a100(NUM_GPUS))
    store = MultiGpuGraphStore(node, ds, seed=3)
    return WholeGraphTrainer(
        store, "graphsage", seed=3, batch_size=256, fanouts=[5] * depth,
        hidden=128, num_layers=depth, plan=plan,
    )


def _depth_point(depth: int) -> dict:
    dp = _isolated(
        lambda: _depth_trainer(depth).train_epoch(max_iterations=4)
    )
    pp = _isolated(
        lambda: _depth_trainer(
            depth, plan=PipelineParallelPlan(micro_batches=MICRO_BATCHES)
        ).train_epoch(max_iterations=4)
    )
    return {
        "depth": depth,
        "dp_epoch": dp.epoch_time,
        "pipeline_epoch": pp.epoch_time,
        "ratio": pp.epoch_time / dp.epoch_time,
        "bubble": pp.extras["pipeline_bubble"],
    }


# -- density sweep: data-parallel sampling vs CAGNET full-graph -------------


def _density_dataset(avg_degree: int, num_nodes: int = 2_000,
                     seed: int = 3) -> SyntheticDataset:
    """A labelled graph with controlled density and a 25% train split.

    Built by hand (rather than ``load_dataset``) because the sweep knob is
    exactly the average degree the named specs pin.
    """
    num_classes = 8
    rng = spawn_rng(seed, "bench-parallelism", avg_degree)
    src, dst = homophilous_edges(
        num_nodes, int(avg_degree / 2 * num_nodes), num_classes, rng,
        homophily=0.8,
    )
    labels = block_labels(num_nodes, num_classes)
    features = class_features(labels, 64, rng)
    graph = from_edge_list(src, dst, num_nodes, undirected=True, dedup=True)
    perm = rng.permutation(num_nodes).astype(np.int64)
    k = num_nodes // 4
    v = num_nodes // 10
    return SyntheticDataset(
        spec=dataset_spec("ogbn-products"), graph=graph, features=features,
        labels=labels, train_nodes=np.sort(perm[:k]),
        val_nodes=np.sort(perm[k:k + v]),
        test_nodes=np.sort(perm[k + v:k + 2 * v]),
        seed=seed, num_classes=num_classes,
    )


def _density_trainer(ds: SyntheticDataset, plan=None) -> WholeGraphTrainer:
    node = SimNode(dgx_a100(NUM_GPUS))
    store = MultiGpuGraphStore(node, ds, seed=3)
    return WholeGraphTrainer(
        store, "gcn", seed=3, batch_size=256, fanouts=[10, 10],
        hidden=64, num_layers=2, plan=plan,
    )


def _density_point(avg_degree: int) -> dict:
    ds = _density_dataset(avg_degree)
    dp = _isolated(lambda: _density_trainer(ds).train_epoch())
    cg = _isolated(
        lambda: _density_trainer(
            ds, plan=CagnetFullGraphPlan()
        ).train_epoch()
    )
    return {
        "avg_degree": avg_degree,
        "dp_epoch": dp.epoch_time,
        "cagnet_epoch": cg.epoch_time,
        "ratio": cg.epoch_time / dp.epoch_time,
        "broadcast": cg.extras["broadcast"],
    }


def _run_all():
    return (
        [_depth_point(d) for d in DEPTHS],
        [_density_point(d) for d in DEGREES],
    )


def test_parallelism(benchmark, emit):
    depth_rows, density_rows = run_once(benchmark, _run_all)

    lines = [
        format_table(
            ["layers", "data-parallel (s)", "pipeline (s)",
             "pipeline/dp", "bubble (s)"],
            [[r["depth"], r["dp_epoch"], r["pipeline_epoch"], r["ratio"],
              r["bubble"]] for r in depth_rows],
            title=f"Depth sweep: pipeline wins deep "
                  f"(M={MICRO_BATCHES}, {NUM_GPUS} GPUs)",
        ),
        format_table(
            ["avg degree", "data-parallel (s)", "CAGNET (s)",
             "cagnet/dp", "broadcast (s)"],
            [[r["avg_degree"], r["dp_epoch"], r["cagnet_epoch"],
              r["ratio"], r["broadcast"]] for r in density_rows],
            title="Density sweep: CAGNET full-graph wins sparse",
        ),
    ]
    emit("parallelism", "\n".join(lines))

    manifest = {
        "name": "parallelism",
        "phase_totals": {
            **{f"depth{r['depth']}_dp": r["dp_epoch"] for r in depth_rows},
            **{f"depth{r['depth']}_pipeline": r["pipeline_epoch"]
               for r in depth_rows},
            **{f"degree{r['avg_degree']}_dp": r["dp_epoch"]
               for r in density_rows},
            **{f"degree{r['avg_degree']}_cagnet": r["cagnet_epoch"]
               for r in density_rows},
        },
        "notes": {
            "depth_ratios": {str(r["depth"]): r["ratio"]
                             for r in depth_rows},
            "density_ratios": {str(r["avg_degree"]): r["ratio"]
                               for r in density_rows},
            "micro_batches": MICRO_BATCHES,
            "num_gpus": NUM_GPUS,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "parallelism.json").write_text(
        json.dumps(manifest, indent=2) + "\n"
    )

    # crossover gates: each mode must win its home regime and lose the
    # other's (the tentpole's acceptance shape)
    shallow, deep = depth_rows[0], depth_rows[-1]
    assert shallow["ratio"] > 1.0, "data-parallel must win shallow models"
    assert deep["ratio"] < 1.0, "pipeline must win deep models"
    sparse, dense = density_rows[0], density_rows[-1]
    assert sparse["ratio"] < 1.0, "CAGNET must win sparse graphs"
    assert dense["ratio"] > 1.0, "sampling must win dense graphs"
    # ratios trend monotonically toward each mode's regime
    depth_ratios = [r["ratio"] for r in depth_rows]
    assert depth_ratios == sorted(depth_ratios, reverse=True)
    density_ratios = [r["ratio"] for r in density_rows]
    assert density_ratios == sorted(density_ratios)
    for r in depth_rows:
        assert r["bubble"] > 0.0
    for r in density_rows:
        assert r["broadcast"] > 0.0
