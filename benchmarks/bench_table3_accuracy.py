"""Regenerates paper Table III: accuracy parity of PyG/DGL/WholeGraph."""

from repro.experiments import table3_accuracy
from benchmarks.conftest import run_once


def test_table3_accuracy(benchmark, emit):
    rows = run_once(benchmark, table3_accuracy.run,
                    num_nodes=5000, epochs=8)
    emit("table3_accuracy", table3_accuracy.report(rows))
    table3_accuracy.check_shape(rows)
