"""Regenerates paper Fig. 9: epoch-time breakdown per framework."""

from repro.experiments import fig9_breakdown
from benchmarks.conftest import run_once


def test_fig9_breakdown(benchmark, emit):
    rows = run_once(benchmark, fig9_breakdown.run,
                    num_nodes=30_000, iterations=2)
    emit("fig9_breakdown", fig9_breakdown.report(rows))
    fig9_breakdown.check_shape(rows)
