"""Regenerates paper Fig. 10: shared-memory vs NCCL-based gather."""

from repro.experiments import fig10_gather
from benchmarks.conftest import run_once


def test_fig10_gather(benchmark, emit):
    rows = run_once(benchmark, fig10_gather.run)
    emit("fig10_gather", fig10_gather.report(rows))
    fig10_gather.check_shape(rows)
