"""Benchmark-harness plumbing.

Every bench regenerates one paper table/figure: it runs the experiment,
prints the same rows the paper reports (straight to the terminal, bypassing
capture), writes them under ``benchmarks/results/``, and asserts the
paper-shape constraints.  Timing goes through pytest-benchmark so the
harness also records wall-clock per experiment.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def emit(capsys):
    """Print a report to the live terminal and persist it to results/."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")

    return _emit


def run_once(benchmark, fn, *args, **kwargs):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
