"""Exports a Chrome trace + RunReport manifest of one training epoch.

The observability demo: trains one (truncated) WholeGraph epoch with the
hot-row cache enabled, then writes

- ``results/trace_epoch.json`` — Chrome trace-event JSON (drop it into
  https://ui.perfetto.dev or ``chrome://tracing``): one thread lane per
  GPU, spans labeled sample/gather/train, counter tracks for per-link
  bytes and the cache hit rate;
- ``results/run_report_epoch.json`` — the structured run manifest
  ``benchmarks/compare_runs.py`` diffs between commits;
- ``results/analysis_epoch.json`` — the span-level
  :class:`~repro.telemetry.analysis.AnalysisReport` (critical path, blame,
  overlap, what-ifs), with its critical-path summary pretty-printed into
  the benchmark log.
"""

import json

from benchmarks.conftest import RESULTS_DIR, run_once
from repro.graph import MultiGpuGraphStore, load_dataset
from repro.hardware import SimNode
from repro.telemetry import metrics
from repro.telemetry.analysis import analyze_node, render_text
from repro.telemetry.trace import export_chrome_trace
from repro.train import WholeGraphTrainer


def _train_one_epoch():
    metrics.get_registry().reset()
    ds = load_dataset("ogbn-products", num_nodes=20_000, seed=0)
    node = SimNode()
    store = MultiGpuGraphStore(node, ds, seed=0, cache_ratio=0.05)
    trainer = WholeGraphTrainer(store, "graphsage", seed=0, batch_size=512,
                                fanouts=[10, 10])
    node.reset_clocks()
    stats = trainer.train_epoch(max_iterations=8)
    return node, trainer, stats


def test_trace_export_epoch(benchmark, emit):
    node, trainer, stats = run_once(benchmark, _train_one_epoch)

    RESULTS_DIR.mkdir(exist_ok=True)
    trace_path = RESULTS_DIR / "trace_epoch.json"
    text = export_chrome_trace(
        node.timeline, path=trace_path, metrics=metrics.get_registry()
    )
    doc = json.loads(text)
    span_events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    assert len(span_events) == len(node.timeline.spans)
    counter_events = [e for e in doc["traceEvents"] if e.get("ph") == "C"]
    assert counter_events, "expected per-link byte / hit-rate counter tracks"

    report = trainer.run_report(name="trace_epoch_demo")
    report.save(RESULTS_DIR / "run_report_epoch.json")

    analysis = analyze_node(
        node, metrics=metrics.get_registry(), name="trace_epoch_demo"
    )
    analysis.save(RESULTS_DIR / "analysis_epoch.json")
    assert analysis.critical_path["covered"] == analysis.makespan
    assert analysis.makespan == stats.epoch_time

    emit(
        "trace_export",
        "\n".join([
            f"epoch_time (simulated): {stats.epoch_time*1e3:.2f} ms over "
            f"{stats.iterations} iterations",
            f"trace: {trace_path} "
            f"({len(span_events)} spans, {len(counter_events)} counter "
            f"samples) — open in https://ui.perfetto.dev",
            f"run report: {RESULTS_DIR / 'run_report_epoch.json'}",
            f"analysis report: {RESULTS_DIR / 'analysis_epoch.json'}",
            render_text(analysis, top=5).rstrip(),
        ]),
    )
