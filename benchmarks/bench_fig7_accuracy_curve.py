"""Regenerates paper Fig. 7: DGL vs WholeGraph accuracy per epoch."""

from repro.experiments import fig7_accuracy_curve
from benchmarks.conftest import run_once


def test_fig7_accuracy_curve(benchmark, emit):
    curves = run_once(benchmark, fig7_accuracy_curve.run,
                      num_nodes=6000, epochs=8)
    emit("fig7_accuracy_curve", fig7_accuracy_curve.report(curves))
    fig7_accuracy_curve.check_shape(curves)
