"""Regenerates paper Fig. 12: GPU utilization traces during training."""

from repro.experiments import fig12_utilization
from benchmarks.conftest import run_once


def test_fig12_utilization(benchmark, emit):
    traces = run_once(benchmark, fig12_utilization.run,
                      num_nodes=20_000, iterations=6)
    emit("fig12_utilization", fig12_utilization.report(traces))
    fig12_utilization.check_shape(traces)
